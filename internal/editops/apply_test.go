package editops

import (
	"fmt"
	"testing"

	"repro/internal/imaging"
)

var (
	red   = imaging.RGB{R: 255}
	green = imaging.RGB{G: 255}
	blue  = imaging.RGB{B: 255}
	white = imaging.RGB{R: 255, G: 255, B: 255}
)

func mustApply(t *testing.T, base *imaging.Image, ops []Op, env *Env) *imaging.Image {
	t.Helper()
	out, err := Apply(base, ops, env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestApplyEmptySequenceIsCopy(t *testing.T) {
	base := imaging.NewFilled(4, 4, red)
	out := mustApply(t, base, nil, nil)
	if !out.Equal(base) {
		t.Fatal("empty sequence changed image")
	}
	out.Set(0, 0, blue)
	if base.At(0, 0) != red {
		t.Fatal("Apply aliased the base image")
	}
}

func TestApplyModifyWholeImage(t *testing.T) {
	base := imaging.NewFilled(4, 4, red)
	out := mustApply(t, base, []Op{Modify{Old: red, New: blue}}, nil)
	if out.CountColor(blue) != 16 {
		t.Fatalf("modified %d pixels", out.CountColor(blue))
	}
}

func TestApplyModifyRespectsDR(t *testing.T) {
	base := imaging.NewFilled(4, 4, red)
	ops := []Op{
		Define{Region: imaging.R(0, 0, 2, 4)},
		Modify{Old: red, New: green},
	}
	out := mustApply(t, base, ops, nil)
	if out.CountColor(green) != 8 || out.CountColor(red) != 8 {
		t.Fatalf("green=%d red=%d", out.CountColor(green), out.CountColor(red))
	}
	if out.At(0, 0) != green || out.At(3, 0) != red {
		t.Fatal("wrong half modified")
	}
}

func TestApplyModifyOnlyMatchingColor(t *testing.T) {
	base := imaging.NewFilled(4, 4, red)
	imaging.FillRect(base, imaging.R(0, 0, 2, 2), blue)
	out := mustApply(t, base, []Op{Modify{Old: blue, New: white}}, nil)
	if out.CountColor(white) != 4 || out.CountColor(red) != 12 {
		t.Fatal("modify touched non-matching pixels")
	}
}

func TestApplyCombineUniformRegionIsFixedPoint(t *testing.T) {
	base := imaging.NewFilled(5, 5, imaging.RGB{R: 100, G: 150, B: 200})
	out := mustApply(t, base, BoxBlur(base.Bounds()), nil)
	if !out.Equal(base) {
		t.Fatal("blur of uniform image changed pixels")
	}
}

func TestApplyCombineAveragesEdges(t *testing.T) {
	// Two-color image: blur at the boundary mixes colors.
	base := imaging.New(4, 1)
	base.Pix[0], base.Pix[1], base.Pix[2], base.Pix[3] = imaging.RGB{}, imaging.RGB{}, white, white
	out := mustApply(t, base, BoxBlur(base.Bounds()), nil)
	// Pixel 1 neighborhood in-bounds: cols 0..2 → avg(0,0,255) = 85.
	if got := out.At(1, 0); got.R != 85 {
		t.Fatalf("blurred pixel = %v", got)
	}
	// Pixel 0 neighborhood: cols 0..1 → avg(0,0) = 0.
	if got := out.At(0, 0); got.R != 0 {
		t.Fatalf("corner pixel = %v", got)
	}
}

func TestApplyCombineIdentityStencil(t *testing.T) {
	base := imaging.New(3, 3)
	for i := range base.Pix {
		base.Pix[i] = imaging.RGB{R: uint8(i * 20), G: uint8(i), B: uint8(255 - i)}
	}
	ident := Combine{Weights: [9]float64{0, 0, 0, 0, 1, 0, 0, 0, 0}}
	out := mustApply(t, base, []Op{ident}, nil)
	if !out.Equal(base) {
		t.Fatal("identity stencil changed image")
	}
}

func TestApplyCombineReadsSnapshot(t *testing.T) {
	// A shift stencil (all weight on the left neighbor) must not cascade:
	// each output reads the ORIGINAL left neighbor.
	base := imaging.New(4, 1)
	base.Pix[0] = imaging.RGB{R: 100}
	base.Pix[1] = imaging.RGB{R: 200}
	base.Pix[2] = imaging.RGB{R: 50}
	base.Pix[3] = imaging.RGB{R: 25}
	left := Combine{Weights: [9]float64{0, 0, 0, 1, 0, 0, 0, 0, 0}}
	out := mustApply(t, base, []Op{left}, nil)
	if out.At(1, 0).R != 100 || out.At(2, 0).R != 200 || out.At(3, 0).R != 50 {
		t.Fatalf("cascade detected: %v", out.Pix)
	}
}

func TestApplyMutateTranslate(t *testing.T) {
	base := imaging.NewFilled(6, 6, white)
	imaging.FillRect(base, imaging.R(0, 0, 2, 2), red)
	ops := TranslateRegion(imaging.R(0, 0, 2, 2), 3, 3)
	env := &Env{Background: imaging.RGB{R: 1, G: 2, B: 3}}
	out := mustApply(t, base, ops, env)
	if out.W != 6 || out.H != 6 {
		t.Fatalf("dims changed: %dx%d", out.W, out.H)
	}
	// Block moved.
	if out.At(3, 3) != red || out.At(4, 4) != red {
		t.Fatal("block not moved")
	}
	// Vacated region has the env background.
	if out.At(0, 0) != (imaging.RGB{R: 1, G: 2, B: 3}) {
		t.Fatalf("vacated pixel = %v", out.At(0, 0))
	}
	// Untouched pixels intact.
	if out.At(5, 0) != white {
		t.Fatal("untouched pixel changed")
	}
}

func TestApplyMutateTranslateClipsOffCanvas(t *testing.T) {
	base := imaging.NewFilled(4, 4, red)
	ops := TranslateRegion(imaging.R(0, 0, 4, 4), 10, 10)
	out := mustApply(t, base, ops, nil)
	if out.CountColor(red) != 0 {
		t.Fatal("off-canvas pixels survived")
	}
	if out.CountColor(DefaultBackground) != 16 {
		t.Fatal("vacated region not background")
	}
}

func TestApplyMutateRotate90AboutCenter(t *testing.T) {
	base := imaging.NewFilled(5, 5, white)
	base.Set(0, 2, red) // left middle
	ops := RotateRegion(base.Bounds(), 3.14159265358979/2)
	out := mustApply(t, base, ops, nil)
	// 90° CCW in image coords maps (0,2) -> (2,4) under x'=-(y-c)+c, y'=(x-c)+c
	// with c=2: x' = -(2-2)+2 = 2, y' = (0-2)+2 = 0 ... verify by search: the
	// red pixel must survive somewhere and the image stays 5x5.
	if out.W != 5 || out.H != 5 {
		t.Fatalf("dims %dx%d", out.W, out.H)
	}
	if out.CountColor(red) != 1 {
		t.Fatalf("red count = %d", out.CountColor(red))
	}
	// Rotation about center keeps the center fixed.
	base2 := imaging.NewFilled(5, 5, white)
	base2.Set(2, 2, red)
	out2 := mustApply(t, base2, RotateRegion(base2.Bounds(), 1.0), nil)
	if out2.At(2, 2) != red {
		t.Fatal("center pixel moved under rotation about center")
	}
}

func TestApplyMutateFlipHorizontal(t *testing.T) {
	base := imaging.New(4, 1)
	base.Pix[0], base.Pix[1], base.Pix[2], base.Pix[3] = red, green, blue, white
	out := mustApply(t, base, FlipHorizontal(base.Bounds()), nil)
	want := []imaging.RGB{white, blue, green, red}
	for i, w := range want {
		if out.Pix[i] != w {
			t.Fatalf("flip pixel %d = %v, want %v", i, out.Pix[i], w)
		}
	}
}

func TestApplyResizeIntegerScale(t *testing.T) {
	base := imaging.New(2, 2)
	base.Pix[0], base.Pix[1], base.Pix[2], base.Pix[3] = red, green, blue, white
	out := mustApply(t, base, ScaleImage(2, 2, 2, 2), nil)
	if out.W != 4 || out.H != 4 {
		t.Fatalf("dims %dx%d", out.W, out.H)
	}
	// Each source pixel becomes a 2x2 block.
	if out.At(0, 0) != red || out.At(1, 1) != red || out.At(2, 0) != green ||
		out.At(0, 2) != blue || out.At(3, 3) != white {
		t.Fatal("blocks wrong")
	}
	if out.CountColor(red) != 4 || out.CountColor(white) != 4 {
		t.Fatal("replication counts wrong")
	}
}

func TestApplyResizeShrink(t *testing.T) {
	base := imaging.NewFilled(8, 8, red)
	out := mustApply(t, base, ScaleImage(8, 8, 0.5, 0.5), nil)
	if out.W != 4 || out.H != 4 {
		t.Fatalf("dims %dx%d", out.W, out.H)
	}
	if out.CountColor(red) != 16 {
		t.Fatal("shrunk image content wrong")
	}
}

func TestApplyMergeNullCrops(t *testing.T) {
	base := imaging.NewFilled(8, 8, red)
	imaging.FillRect(base, imaging.R(2, 2, 5, 6), blue)
	out := mustApply(t, base, CropTo(imaging.R(2, 2, 5, 6)), nil)
	if out.W != 3 || out.H != 4 {
		t.Fatalf("crop dims %dx%d", out.W, out.H)
	}
	if out.CountColor(blue) != 12 {
		t.Fatalf("crop content: %d blue", out.CountColor(blue))
	}
}

func resolverFor(images map[uint64]*imaging.Image) func(uint64) (*imaging.Image, error) {
	return func(id uint64) (*imaging.Image, error) {
		img, ok := images[id]
		if !ok {
			return nil, fmt.Errorf("no image %d", id)
		}
		return img, nil
	}
}

func TestApplyMergeOntoTarget(t *testing.T) {
	target := imaging.NewFilled(10, 10, green)
	env := &Env{
		Background:   white,
		ResolveImage: resolverFor(map[uint64]*imaging.Image{42: target}),
	}
	base := imaging.NewFilled(4, 4, red)
	out := mustApply(t, base, PasteOnto(imaging.R(0, 0, 2, 2), 42, 3, 3), env)
	if out.W != 10 || out.H != 10 {
		t.Fatalf("dims %dx%d", out.W, out.H)
	}
	if out.CountColor(red) != 4 {
		t.Fatalf("pasted %d red pixels", out.CountColor(red))
	}
	if out.At(3, 3) != red || out.At(4, 4) != red || out.At(5, 5) != green {
		t.Fatal("paste location wrong")
	}
	if out.CountColor(green) != 96 {
		t.Fatalf("target pixels = %d", out.CountColor(green))
	}
}

func TestApplyMergeOverhangFillsGap(t *testing.T) {
	target := imaging.NewFilled(4, 4, green)
	env := &Env{
		Background:   white,
		ResolveImage: resolverFor(map[uint64]*imaging.Image{7: target}),
	}
	base := imaging.NewFilled(3, 3, red)
	// Paste 3x3 at (3,3): canvas 6x6, overwritten 1, gap 36-16-9+1 = 12.
	out := mustApply(t, base, PasteOnto(imaging.R(0, 0, 3, 3), 7, 3, 3), env)
	if out.W != 6 || out.H != 6 {
		t.Fatalf("dims %dx%d", out.W, out.H)
	}
	if out.CountColor(red) != 9 || out.CountColor(green) != 15 || out.CountColor(white) != 12 {
		t.Fatalf("red=%d green=%d white=%d", out.CountColor(red), out.CountColor(green), out.CountColor(white))
	}
}

func TestApplyMergeNegativePlacement(t *testing.T) {
	target := imaging.NewFilled(4, 4, green)
	env := &Env{ResolveImage: resolverFor(map[uint64]*imaging.Image{7: target})}
	base := imaging.NewFilled(2, 2, red)
	out := mustApply(t, base, PasteOnto(imaging.R(0, 0, 2, 2), 7, -2, 0), env)
	if out.W != 6 || out.H != 4 {
		t.Fatalf("dims %dx%d", out.W, out.H)
	}
	if out.At(0, 0) != red || out.At(2, 0) != green {
		t.Fatal("negative placement layout wrong")
	}
}

func TestApplyMergeMissingTargetFails(t *testing.T) {
	base := imaging.NewFilled(2, 2, red)
	env := &Env{ResolveImage: resolverFor(nil)}
	if _, err := Apply(base, []Op{Merge{Target: 99}}, env); err == nil {
		t.Fatal("missing target did not fail")
	}
}

func TestApplyInvalidOpFails(t *testing.T) {
	base := imaging.NewFilled(2, 2, red)
	if _, err := Apply(base, []Op{Combine{}}, nil); err == nil {
		t.Fatal("invalid op applied")
	}
}

func TestApplyOpsAfterMergeUseNewCanvas(t *testing.T) {
	// Crop to a region, then modify everything: the DR after a null merge is
	// the whole pasted block.
	base := imaging.NewFilled(6, 6, red)
	ops := append(CropTo(imaging.R(0, 0, 3, 3)), Modify{Old: red, New: blue})
	out := mustApply(t, base, ops, nil)
	if out.W != 3 || out.CountColor(blue) != 9 {
		t.Fatalf("post-merge modify: %dx%d, blue=%d", out.W, out.H, out.CountColor(blue))
	}
}

func TestApplySequenceResolvesBase(t *testing.T) {
	base := imaging.NewFilled(3, 3, red)
	env := &Env{ResolveImage: resolverFor(map[uint64]*imaging.Image{1: base})}
	s := &Sequence{BaseID: 1, Ops: []Op{Modify{Old: red, New: green}}}
	out, err := ApplySequence(s, env)
	if err != nil {
		t.Fatal(err)
	}
	if out.CountColor(green) != 9 {
		t.Fatal("sequence application wrong")
	}
	if _, err := ApplySequence(&Sequence{BaseID: 2}, env); err == nil {
		t.Fatal("missing base did not fail")
	}
	if _, err := ApplySequence(s, nil); err == nil {
		t.Fatal("nil env did not fail")
	}
}
