package editops

import (
	"strings"
	"testing"
)

// FuzzDecodeBinary asserts the binary sequence decoder never panics and
// that accepted inputs survive an encode/decode round trip.
func FuzzDecodeBinary(f *testing.F) {
	f.Add(EncodeBinary(sampleSequence()))
	f.Add(EncodeBinary(&Sequence{BaseID: 1}))
	f.Add([]byte{})
	f.Add([]byte{1, 1, 3, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, err := DecodeBinary(data)
		if err != nil {
			return
		}
		again, err := DecodeBinary(EncodeBinary(seq))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !sequencesEqual(seq, again) {
			t.Fatal("binary round trip not a fixed point")
		}
	})
}

// FuzzParseText asserts the text parser never panics and that accepted
// scripts survive a format/parse round trip.
func FuzzParseText(f *testing.F) {
	f.Add(FormatText(sampleSequence()))
	f.Add("base 1\ndefine 0 0 4 4\nmodify #ff0000 #00ff00\n")
	f.Add("# comment only\n")
	f.Add("base 1\nmerge null\nmutate 1 0 0 0 1 0 0 0 1\n")

	f.Fuzz(func(t *testing.T, text string) {
		seq, err := ParseText(strings.NewReader(text))
		if err != nil {
			return
		}
		again, err := ParseText(strings.NewReader(FormatText(seq)))
		if err != nil {
			t.Fatalf("re-parse of %q: %v", FormatText(seq), err)
		}
		if !sequencesEqual(seq, again) {
			t.Fatal("text round trip not a fixed point")
		}
	})
}

// FuzzApplySmallImages applies decoded sequences to a small raster: the
// instantiation engine must never panic on any decodable sequence whose
// ops validate, and its output geometry must match the Geom walk.
func FuzzApplySmallImages(f *testing.F) {
	f.Add(EncodeBinary(&Sequence{BaseID: 1, Ops: []Op{
		Define{Region: imagingRect(0, 0, 3, 3)},
		Modify{},
		Merge{Target: NullTarget},
	}}))
	f.Add(EncodeBinary(&Sequence{BaseID: 1, Ops: []Op{
		Mutate{M: [9]float64{2, 0, 0, 0, 2, 0, 0, 0, 1}},
	}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, err := DecodeBinary(data)
		if err != nil {
			return
		}
		for _, op := range seq.Ops {
			if op.Validate() != nil {
				return
			}
			// Reject resolver-dependent and explosive ops: fuzzing targets
			// the geometry/rules interplay, not resource limits.
			if m, ok := op.(Merge); ok && m.Target != NullTarget {
				return
			}
			if m, ok := op.(Mutate); ok {
				if sx, sy, isScale := m.ScaleFactors(); isScale && (sx > 4 || sy > 4) {
					return
				}
				for _, v := range m.M {
					if v > 1e6 || v < -1e6 {
						return
					}
				}
			}
			if d, ok := op.(Define); ok {
				r := d.Region.Canon()
				if r.Dx() > 1024 || r.Dy() > 1024 {
					return
				}
			}
		}
		if len(seq.Ops) > 12 {
			return
		}
		base := NewTestImage(5, 4)
		out, err := Apply(base, seq.Ops, nil)
		if err != nil {
			return
		}
		g := StartGeom(base.W, base.H)
		for _, op := range seq.Ops {
			g, _, err = g.Step(op, nil)
			if err != nil {
				t.Fatalf("geom step failed where apply succeeded: %v", err)
			}
		}
		if out.W != g.W || out.H != g.H {
			t.Fatalf("apply %dx%d != geom %dx%d", out.W, out.H, g.W, g.H)
		}
	})
}
