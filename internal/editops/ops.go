// Package editops implements the paper's complete set of image editing
// operations — Define, Combine, Modify, Mutate and Merge (Brown, Gruenwald &
// Speegle 1997; Speegle et al. 2000) — together with the instantiation
// engine that turns a base raster plus an operation sequence back into a
// raster, codecs for storing sequences compactly, convenience builders, and
// a synthesizer demonstrating the set's completeness property.
//
// Storing an edited image as (base image reference, operation sequence) is
// the space-saving representation the paper's augmented MMDBMS relies on:
// a handful of operations replaces a full raster copy.
package editops

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/imaging"
)

// Kind identifies an operation type. Values are stable: they appear in the
// binary encoding of stored sequences.
type Kind uint8

// The five operation kinds.
const (
	KindDefine Kind = iota + 1
	KindCombine
	KindModify
	KindMutate
	KindMerge
)

// String returns the lower-case operation name.
func (k Kind) String() string {
	switch k {
	case KindDefine:
		return "define"
	case KindCombine:
		return "combine"
	case KindModify:
		return "modify"
	case KindMutate:
		return "mutate"
	case KindMerge:
		return "merge"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one editing operation. The concrete types are Define, Combine,
// Modify, Mutate and Merge.
type Op interface {
	// Kind returns the operation's type tag.
	Kind() Kind
	// Validate reports whether the operation's parameters are well-formed.
	Validate() error
	// String renders the operation in the text sequence format understood
	// by ParseText.
	String() string
}

// Define selects the Defined Region (DR): the group of pixels edited by
// subsequent operations. The region may extend beyond the image; it is
// clipped to the current image bounds when each operation applies. The DR
// before any Define is the whole image.
type Define struct {
	Region imaging.Rect
}

// Kind returns KindDefine.
func (Define) Kind() Kind { return KindDefine }

// Validate accepts any canonical (non-inverted) rectangle.
func (o Define) Validate() error {
	if o.Region.X1 < o.Region.X0 || o.Region.Y1 < o.Region.Y0 {
		return fmt.Errorf("editops: define region %v not canonical", o.Region)
	}
	return nil
}

// String renders "define x0 y0 x1 y1".
func (o Define) String() string {
	return fmt.Sprintf("define %d %d %d %d", o.Region.X0, o.Region.Y0, o.Region.X1, o.Region.Y1)
}

// Combine blurs the DR: each pixel in the DR takes the weighted average of
// its 3×3 neighborhood, using Weights C1..C9 in row-major order (C5 is the
// pixel itself). Neighbors outside the image are excluded and the weights of
// the remaining neighbors renormalized. All reads see the pre-operation
// image (no cascade within one Combine).
type Combine struct {
	Weights [9]float64
}

// Kind returns KindCombine.
func (Combine) Kind() Kind { return KindCombine }

// Validate requires finite, non-negative weights with a positive sum.
func (o Combine) Validate() error {
	sum := 0.0
	for i, w := range o.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("editops: combine weight C%d = %v invalid", i+1, w)
		}
		sum += w
	}
	if sum <= 0 {
		return errors.New("editops: combine weights sum to zero")
	}
	return nil
}

// String renders "combine w1 .. w9".
func (o Combine) String() string {
	s := "combine"
	for _, w := range o.Weights {
		s += fmt.Sprintf(" %g", w)
	}
	return s
}

// Modify recolors every pixel in the DR whose color is exactly Old to New.
type Modify struct {
	Old, New imaging.RGB
}

// Kind returns KindModify.
func (Modify) Kind() Kind { return KindModify }

// Validate always succeeds: every old→new pair is meaningful.
func (Modify) Validate() error { return nil }

// String renders "modify #rrggbb #rrggbb".
func (o Modify) String() string {
	return fmt.Sprintf("modify %s %s", o.Old, o.New)
}

// Mutate rearranges pixels using a 3×3 matrix M (row-major M11..M33) applied
// to homogeneous pixel coordinates (x, y, 1). Two execution behaviours:
//
//   - Resize: if M is a pure positive scale (diag(sx, sy, 1)) and the DR
//     covers the whole image, the image is resampled to round(W·sx) ×
//     round(H·sy) with nearest-neighbor inverse mapping.
//   - Move: otherwise, each DR pixel is forward-mapped to round(M·(x,y,1));
//     vacated DR cells become the background color, destinations are
//     overwritten, and moves that land outside the canvas are clipped. This
//     covers the paper's rigid-body rotations and translations.
//
// The bottom row must be (0, 0, 1): the operation set is affine.
type Mutate struct {
	M [9]float64
}

// Kind returns KindMutate.
func (Mutate) Kind() Kind { return KindMutate }

// Validate requires finite entries and an affine bottom row.
func (o Mutate) Validate() error {
	for i, v := range o.M {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("editops: mutate M%d%d = %v invalid", i/3+1, i%3+1, v)
		}
	}
	if o.M[6] != 0 || o.M[7] != 0 || o.M[8] != 1 {
		return fmt.Errorf("editops: mutate bottom row (%g %g %g) must be (0 0 1)", o.M[6], o.M[7], o.M[8])
	}
	return nil
}

// String renders "mutate m11 .. m33".
func (o Mutate) String() string {
	s := "mutate"
	for _, v := range o.M {
		s += fmt.Sprintf(" %g", v)
	}
	return s
}

// ScaleFactors returns (sx, sy, true) when the matrix is a pure positive
// scale diag(sx, sy, 1); otherwise ok is false.
func (o Mutate) ScaleFactors() (sx, sy float64, ok bool) {
	m := o.M
	if m[1] != 0 || m[2] != 0 || m[3] != 0 || m[5] != 0 {
		return 0, 0, false
	}
	if m[0] <= 0 || m[4] <= 0 {
		return 0, 0, false
	}
	return m[0], m[4], true
}

// IsRigid reports whether the linear part preserves area (|det| = 1), the
// paper's "rigid body" condition covering rotations, translations and
// reflections.
func (o Mutate) IsRigid() bool {
	det := o.M[0]*o.M[4] - o.M[1]*o.M[3]
	return math.Abs(math.Abs(det)-1) < 1e-9
}

// Transform maps pixel coordinates through the matrix, rounding to the
// nearest integer cell.
func (o Mutate) Transform(x, y int) (int, int) {
	fx := o.M[0]*float64(x) + o.M[1]*float64(y) + o.M[2]
	fy := o.M[3]*float64(x) + o.M[4]*float64(y) + o.M[5]
	return int(math.Round(fx)), int(math.Round(fy))
}

// NullTarget is the Merge target id meaning "no target": the result is the
// DR alone as a new image.
const NullTarget uint64 = 0

// Merge copies the current DR into a target image with the DR's top-left
// placed at (XP, YP) in target coordinates. The result canvas is the
// bounding box of the target and the pasted block (the paper's total-pixels
// formula); any gap is filled with the background color. With Target ==
// NullTarget, the result is the DR contents alone.
type Merge struct {
	Target uint64
	XP, YP int
}

// Kind returns KindMerge.
func (Merge) Kind() Kind { return KindMerge }

// Validate always succeeds; target existence is checked at apply time.
func (Merge) Validate() error { return nil }

// String renders "merge null" or "merge <id> xp yp".
func (o Merge) String() string {
	if o.Target == NullTarget {
		return "merge null"
	}
	return fmt.Sprintf("merge %d %d %d", o.Target, o.XP, o.YP)
}

// Sequence is a stored edited image: a reference to a base (binary) image
// and the operations that transform it. This pair is the space-saving
// storage format of the augmented database.
type Sequence struct {
	// BaseID references the binary image the sequence starts from.
	BaseID uint64
	// Ops are applied in order.
	Ops []Op
}

// Validate checks every operation.
func (s *Sequence) Validate() error {
	if s.BaseID == 0 {
		return errors.New("editops: sequence has no base image reference")
	}
	for i, op := range s.Ops {
		if err := op.Validate(); err != nil {
			return fmt.Errorf("editops: op %d: %w", i, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the sequence. Op values are immutable so the
// op slice contents are shared-safe to copy shallowly.
func (s *Sequence) Clone() *Sequence {
	ops := make([]Op, len(s.Ops))
	copy(ops, s.Ops)
	return &Sequence{BaseID: s.BaseID, Ops: ops}
}

// MergeTargets returns the distinct non-null Merge target ids referenced by
// the sequence, in first-use order. The database uses this to pin targets an
// edited image depends on.
func (s *Sequence) MergeTargets() []uint64 {
	var out []uint64
	seen := make(map[uint64]bool)
	for _, op := range s.Ops {
		if m, ok := op.(Merge); ok && m.Target != NullTarget && !seen[m.Target] {
			seen[m.Target] = true
			out = append(out, m.Target)
		}
	}
	return out
}
