package editops

import (
	"math"

	"repro/internal/imaging"
)

// Builders assemble common whole-edit gestures from the five primitives.
// The dataset augmenter and the examples use these rather than hand-rolling
// op lists.

// BoxBlur returns Define(region) followed by a uniform 3×3 Combine.
func BoxBlur(region imaging.Rect) []Op {
	return []Op{
		Define{Region: region},
		Combine{Weights: [9]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}},
	}
}

// GaussianBlur returns Define(region) followed by a 3×3 binomial Combine
// (the discrete Gaussian kernel 1-2-1 ⊗ 1-2-1).
func GaussianBlur(region imaging.Rect) []Op {
	return []Op{
		Define{Region: region},
		Combine{Weights: [9]float64{1, 2, 1, 2, 4, 2, 1, 2, 1}},
	}
}

// Recolor returns Define(region) plus one Modify per old→new pair, applied
// in order.
func Recolor(region imaging.Rect, pairs ...[2]imaging.RGB) []Op {
	ops := []Op{Define{Region: region}}
	for _, p := range pairs {
		ops = append(ops, Modify{Old: p[0], New: p[1]})
	}
	return ops
}

// TranslateRegion returns Define(region) plus a rigid Mutate that shifts the
// region's pixels by (dx, dy).
func TranslateRegion(region imaging.Rect, dx, dy int) []Op {
	return []Op{
		Define{Region: region},
		Mutate{M: [9]float64{1, 0, float64(dx), 0, 1, float64(dy), 0, 0, 1}},
	}
}

// RotateRegion returns Define(region) plus a rigid Mutate rotating the
// region's pixels by the given angle (radians, counterclockwise in image
// coordinates) about the region's center.
func RotateRegion(region imaging.Rect, radians float64) []Op {
	cx := float64(region.X0+region.X1-1) / 2
	cy := float64(region.Y0+region.Y1-1) / 2
	c, s := math.Cos(radians), math.Sin(radians)
	// T(center) · R(θ) · T(−center)
	return []Op{
		Define{Region: region},
		Mutate{M: [9]float64{
			c, -s, cx - c*cx + s*cy,
			s, c, cy - s*cx - c*cy,
			0, 0, 1,
		}},
	}
}

// FlipHorizontal returns Define(region) plus a rigid Mutate mirroring the
// region's pixels across its vertical center line.
func FlipHorizontal(region imaging.Rect) []Op {
	axis := float64(region.X0 + region.X1 - 1)
	return []Op{
		Define{Region: region},
		Mutate{M: [9]float64{-1, 0, axis, 0, 1, 0, 0, 0, 1}},
	}
}

// ScaleImage returns Define(whole) plus a resize Mutate by (sx, sy). The
// caller supplies the current image dimensions so the Define can cover the
// whole canvas, which is what selects resize (rather than move) semantics.
func ScaleImage(w, h int, sx, sy float64) []Op {
	return []Op{
		Define{Region: imaging.Rect{X0: 0, Y0: 0, X1: w, Y1: h}},
		Mutate{M: [9]float64{sx, 0, 0, 0, sy, 0, 0, 0, 1}},
	}
}

// CropTo returns Define(region) plus a null-target Merge: the result image
// is the region alone.
func CropTo(region imaging.Rect) []Op {
	return []Op{
		Define{Region: region},
		Merge{Target: NullTarget},
	}
}

// PasteOnto returns Define(region) plus a Merge placing the region onto the
// target image at (xp, yp).
func PasteOnto(region imaging.Rect, target uint64, xp, yp int) []Op {
	return []Op{
		Define{Region: region},
		Merge{Target: target, XP: xp, YP: yp},
	}
}
