package editops

import (
	"fmt"
	"math"

	"repro/internal/imaging"
)

// DefaultBackground is the fill color for pixels vacated by Mutate moves and
// for Merge canvas gaps when the environment does not override it.
var DefaultBackground = imaging.RGB{R: 0, G: 0, B: 0}

// Env supplies the context an instantiation needs beyond the base raster:
// the background fill color and a resolver for Merge target images.
type Env struct {
	// Background fills vacated and gap pixels. The rule engine must be
	// configured with the same color for its Merge/Mutate rules to be sound.
	Background imaging.RGB
	// ResolveImage returns the raster of a Merge target by object id. It may
	// be nil if the sequence contains no non-null Merge.
	ResolveImage func(id uint64) (*imaging.Image, error)
}

// TargetDims derives a dimension resolver from the environment's image
// resolver, for stepping Geom.
func (e *Env) TargetDims() TargetDims {
	if e == nil || e.ResolveImage == nil {
		return nil
	}
	return func(id uint64) (int, int, error) {
		img, err := e.ResolveImage(id)
		if err != nil {
			return 0, 0, err
		}
		return img.W, img.H, nil
	}
}

func (e *Env) background() imaging.RGB {
	if e == nil {
		return DefaultBackground
	}
	return e.Background
}

// Apply instantiates an edited image: it executes ops in order against a
// copy of base and returns the result. This is the expensive path the
// paper's query processing avoids; the database uses it for ground-truth
// verification, for materializing query results, and as the baseline in the
// instantiation ablation.
func Apply(base *imaging.Image, ops []Op, env *Env) (*imaging.Image, error) {
	img := base.Clone()
	g := StartGeom(img.W, img.H)
	dims := env.TargetDims()
	for i, op := range ops {
		if err := op.Validate(); err != nil {
			return nil, fmt.Errorf("editops: op %d: %w", i, err)
		}
		next, layout, err := g.Step(op, dims)
		if err != nil {
			return nil, fmt.Errorf("editops: op %d: %w", i, err)
		}
		img, err = applyOne(img, op, g, layout, env)
		if err != nil {
			return nil, fmt.Errorf("editops: op %d (%s): %w", i, op.Kind(), err)
		}
		g = next
		if img.W != g.W || img.H != g.H {
			panic(fmt.Sprintf("editops: geometry desync after op %d: raster %dx%d, geom %dx%d", i, img.W, img.H, g.W, g.H))
		}
	}
	return img, nil
}

// ApplySequence resolves the sequence's base image through the environment
// and instantiates it.
func ApplySequence(s *Sequence, env *Env) (*imaging.Image, error) {
	if env == nil || env.ResolveImage == nil {
		return nil, fmt.Errorf("editops: sequence instantiation needs an image resolver")
	}
	base, err := env.ResolveImage(s.BaseID)
	if err != nil {
		return nil, fmt.Errorf("editops: base image %d: %w", s.BaseID, err)
	}
	return Apply(base, s.Ops, env)
}

func applyOne(img *imaging.Image, op Op, g Geom, layout MergeLayout, env *Env) (*imaging.Image, error) {
	switch o := op.(type) {
	case Define:
		return img, nil
	case Combine:
		return applyCombine(img, o, g.EffectiveDR()), nil
	case Modify:
		return applyModify(img, o, g.EffectiveDR()), nil
	case Mutate:
		if sx, sy, ok := o.ScaleFactors(); ok && g.DR.Canon().ContainsRect(g.Bounds()) {
			return applyResize(img, sx, sy), nil
		}
		return applyMove(img, o, g.EffectiveDR(), env.background()), nil
	case Merge:
		var target *imaging.Image
		if o.Target != NullTarget {
			var err error
			target, err = env.ResolveImage(o.Target)
			if err != nil {
				return nil, err
			}
		}
		return applyMerge(img, g.EffectiveDR(), target, layout, env.background()), nil
	default:
		return nil, fmt.Errorf("unknown op type %T", op)
	}
}

// applyCombine blurs the DR with the 3×3 weight stencil, reading from the
// pre-operation image. Out-of-bounds neighbors are dropped and the weights
// of the remaining ones renormalized.
func applyCombine(img *imaging.Image, o Combine, dr imaging.Rect) *imaging.Image {
	out := img.Clone()
	for y := dr.Y0; y < dr.Y1; y++ {
		for x := dr.X0; x < dr.X1; x++ {
			var r, g, b, wsum float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if !img.In(nx, ny) {
						continue
					}
					w := o.Weights[(dy+1)*3+(dx+1)]
					if w == 0 {
						continue
					}
					p := img.Pix[ny*img.W+nx]
					r += w * float64(p.R)
					g += w * float64(p.G)
					b += w * float64(p.B)
					wsum += w
				}
			}
			if wsum == 0 {
				continue
			}
			out.Pix[y*out.W+x] = imaging.RGB{
				R: clamp8(math.Round(r / wsum)),
				G: clamp8(math.Round(g / wsum)),
				B: clamp8(math.Round(b / wsum)),
			}
		}
	}
	return out
}

func applyModify(img *imaging.Image, o Modify, dr imaging.Rect) *imaging.Image {
	out := img.Clone()
	for y := dr.Y0; y < dr.Y1; y++ {
		row := out.Pix[y*out.W+dr.X0 : y*out.W+dr.X1]
		for i := range row {
			if row[i] == o.Old {
				row[i] = o.New
			}
		}
	}
	return out
}

// applyResize resamples the whole image by (sx, sy) with nearest-neighbor
// inverse mapping, the semantics ScaleReplication's bounds are derived from.
func applyResize(img *imaging.Image, sx, sy float64) *imaging.Image {
	outW := ScaleOutDim(img.W, sx)
	outH := ScaleOutDim(img.H, sy)
	out := imaging.New(outW, outH)
	for y := 0; y < outH; y++ {
		sy0 := ScaleSrcIndex(y, img.H, sy)
		for x := 0; x < outW; x++ {
			sx0 := ScaleSrcIndex(x, img.W, sx)
			out.Pix[y*outW+x] = img.Pix[sy0*img.W+sx0]
		}
	}
	return out
}

// applyMove forward-maps every DR pixel through the matrix: vacated DR cells
// become background, destinations are overwritten (later source pixels win
// on collision), and off-canvas destinations are clipped.
func applyMove(img *imaging.Image, o Mutate, dr imaging.Rect, bg imaging.RGB) *imaging.Image {
	out := img.Clone()
	imaging.FillRect(out, dr, bg)
	for y := dr.Y0; y < dr.Y1; y++ {
		for x := dr.X0; x < dr.X1; x++ {
			tx, ty := o.Transform(x, y)
			out.Set(tx, ty, img.Pix[y*img.W+x])
		}
	}
	return out
}

// applyMerge builds the merged canvas per the layout: background fill,
// target drawn at its offset, then the DR block pasted over it.
func applyMerge(img *imaging.Image, dr imaging.Rect, target *imaging.Image, l MergeLayout, bg imaging.RGB) *imaging.Image {
	out := imaging.NewFilled(l.NewW, l.NewH, bg)
	if target != nil {
		for y := 0; y < target.H; y++ {
			for x := 0; x < target.W; x++ {
				out.Set(x+l.TargetOffX, y+l.TargetOffY, target.Pix[y*target.W+x])
			}
		}
	}
	for y := 0; y < l.BlockH; y++ {
		for x := 0; x < l.BlockW; x++ {
			out.Set(l.Paste.X0+x, l.Paste.Y0+y, img.Pix[(dr.Y0+y)*img.W+dr.X0+x])
		}
	}
	return out
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
