package editops

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/imaging"
)

func sampleSequence() *Sequence {
	return &Sequence{
		BaseID: 77,
		Ops: []Op{
			Define{Region: imaging.R(-3, 0, 12, 9)},
			Combine{Weights: [9]float64{1, 2, 1, 2, 4, 2, 1, 2, 1}},
			Modify{Old: imaging.RGB{R: 255, G: 0, B: 0}, New: imaging.RGB{R: 0, G: 0, B: 255}},
			Mutate{M: [9]float64{1, 0, 5.5, 0, 1, -2, 0, 0, 1}},
			Merge{Target: NullTarget},
			Merge{Target: 12, XP: -4, YP: 7},
		},
	}
}

func sequencesEqual(a, b *Sequence) bool {
	if a.BaseID != b.BaseID || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	s := sampleSequence()
	data := EncodeBinary(s)
	got, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !sequencesEqual(s, got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", s, got)
	}
}

func TestBinaryRoundTripEmptyOps(t *testing.T) {
	s := &Sequence{BaseID: 1}
	got, err := DecodeBinary(EncodeBinary(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseID != 1 || len(got.Ops) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func randomOps(rng *rand.Rand, n int) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			r := imaging.R(rng.Intn(64)-8, rng.Intn(64)-8, rng.Intn(64), rng.Intn(64)).Canon()
			ops = append(ops, Define{Region: r})
		case 1:
			var c Combine
			for j := range c.Weights {
				c.Weights[j] = float64(rng.Intn(5))
			}
			c.Weights[4] = 1 + float64(rng.Intn(4))
			ops = append(ops, c)
		case 2:
			ops = append(ops, Modify{
				Old: imaging.RGB{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))},
				New: imaging.RGB{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))},
			})
		case 3:
			ops = append(ops, Mutate{M: [9]float64{1, 0, float64(rng.Intn(9) - 4), 0, 1, float64(rng.Intn(9) - 4), 0, 0, 1}})
		default:
			if rng.Intn(2) == 0 {
				ops = append(ops, Merge{Target: NullTarget})
			} else {
				ops = append(ops, Merge{Target: uint64(rng.Intn(100) + 1), XP: rng.Intn(20) - 10, YP: rng.Intn(20) - 10})
			}
		}
	}
	return ops
}

func TestBinaryRoundTripRandomSequences(t *testing.T) {
	f := func(seed int64, baseID uint64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Sequence{BaseID: baseID, Ops: randomOps(rng, int(n)%20)}
		got, err := DecodeBinary(EncodeBinary(s))
		return err == nil && sequencesEqual(s, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	valid := EncodeBinary(sampleSequence())
	cases := map[string][]byte{
		"empty":      {},
		"truncated":  valid[:len(valid)-3],
		"bad kind":   append(append([]byte{}, 1, 1), 99),
		"trailing":   append(append([]byte{}, valid...), 0xff),
		"huge count": {1, 0xff, 0xff, 0xff, 0xff, 0x0f},
	}
	for name, data := range cases {
		if _, err := DecodeBinary(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := sampleSequence()
	text := FormatText(s)
	got, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse:\n%s\n%v", text, err)
	}
	if !sequencesEqual(s, got) {
		t.Fatalf("text round trip mismatch:\n%s", text)
	}
}

func TestParseTextCommentsAndBlanks(t *testing.T) {
	src := `
# an edited flag
base 9

define 0 0 10 10
# swap colors
modify #ff0000 #00ff00
`
	s, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.BaseID != 9 || len(s.Ops) != 2 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"define 0 0 1 1\n",                    // missing base
		"base 1\nbase 2\n",                    // duplicate base
		"base x\n",                            // bad id
		"base 1\nfrobnicate 1\n",              // unknown op
		"base 1\ndefine 1 2 3\n",              // arity
		"base 1\nmodify #ff00 #0f0f0f",        // short color
		"base 1\nmodify red blue\n",           // non-hex color
		"base 1\ncombine 1 2 3\n",             // arity
		"base 1\nmutate 1 2\n",                // arity
		"base 1\nmerge 1 2\n",                 // merge arity
		"base 1\nmerge -5 1 1\n",              // negative target
		"base 1\ndefine 1 2 3 oops\n",         // bad int
		"base 1\ncombine 1 1 1 1 x 1 1 1 1\n", // bad float
	}
	for i, src := range cases {
		if _, err := ParseText(strings.NewReader(src)); err == nil {
			t.Errorf("case %d parsed without error: %q", i, src)
		}
	}
}

func TestParseHexColor(t *testing.T) {
	c, err := ParseHexColor("#CC00Ff")
	if err != nil {
		t.Fatal(err)
	}
	if c != (imaging.RGB{R: 0xcc, G: 0x00, B: 0xff}) {
		t.Fatalf("parsed %v", c)
	}
	if _, err := ParseHexColor("zzzzzz"); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestTextFormatIsStable(t *testing.T) {
	// Formatting a parsed sequence must reproduce the same text.
	s := sampleSequence()
	text := FormatText(s)
	got, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if FormatText(got) != text {
		t.Fatalf("format not stable:\n%s\n%s", text, FormatText(got))
	}
}
