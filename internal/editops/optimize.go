package editops

// Optimize rewrites an operation sequence into a shorter one that
// instantiates to the exact same raster for a base image of the given
// dimensions. Since the database stores sequences verbatim and walks them
// on every rule evaluation, shorter scripts are both smaller on disk and
// cheaper to query. From the first target Merge onward the sequence is kept
// verbatim (the target's dimensions are unknown here).
//
// Rewrites applied:
//
//   - A Define immediately followed by another Define is dropped, as is a
//     trailing Define (purely syntactic: a Define only sets the DR, which
//     the next Define overwrites and nothing after a trailing one reads).
//   - A Define whose effective region equals the already-selected one is
//     dropped.
//   - Modify with Old == New is dropped (recolor to itself).
//   - Combine, Modify and move-Mutate over an empty effective DR are
//     dropped (they touch no pixels).
//   - An identity Mutate is dropped, as is a resize by factors (1, 1).
//   - A null Merge whose DR covers the whole canvas is dropped (cropping
//     to everything).
//
// Every geometry-aware drop removes an operation with no effect on the
// image or on the effective DR of later operations, so
// Apply(base, ops) == Apply(base, Optimize(ops, ...)) pixel-exactly; a
// property test enforces this across random sequences.
func Optimize(ops []Op, baseW, baseH int) []Op {
	ops = dropDeadDefines(ops)
	out := make([]Op, 0, len(ops))
	g := StartGeom(baseW, baseH)
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		if m, ok := op.(Merge); ok && m.Target != NullTarget {
			// Geometry is unknowable past a target Merge; keep the rest.
			out = append(out, ops[i:]...)
			return dropDeadDefines(out)
		}
		drop := false
		switch o := op.(type) {
		case Define:
			if o.Region.Canon().Intersect(g.Bounds()) == g.EffectiveDR() && !g.EffectiveDR().Empty() {
				drop = true // selecting what is already selected
			}
		case Modify:
			if o.Old == o.New || g.EffectiveDR().Empty() {
				drop = true
			}
		case Combine:
			if g.EffectiveDR().Empty() {
				drop = true
			}
		case Mutate:
			if sx, sy, ok := o.ScaleFactors(); ok && g.DR.Canon().ContainsRect(g.Bounds()) {
				if sx == 1 && sy == 1 {
					drop = true
				}
			} else if isIdentityMatrix(o.M) || g.EffectiveDR().Empty() {
				drop = true
			}
		case Merge:
			if g.EffectiveDR() == g.Bounds() && !g.Bounds().Empty() {
				drop = true // null merge of the whole canvas
			}
		}
		// Geometry tracks the ORIGINAL sequence; every dropped operation
		// leaves the image and the effective DR of later operations
		// unchanged, so the output sequence follows the same effective
		// geometry.
		next, _, err := g.Step(op, nil)
		if err != nil {
			out = append(out, ops[i:]...)
			return dropDeadDefines(out)
		}
		g = next
		if !drop {
			out = append(out, op)
		}
	}
	return dropDeadDefines(out)
}

// dropDeadDefines removes Defines that are immediately overwritten by
// another Define and a trailing Define, both purely syntactic rewrites.
func dropDeadDefines(ops []Op) []Op {
	out := make([]Op, 0, len(ops))
	for i, op := range ops {
		if _, ok := op.(Define); ok {
			if i+1 >= len(ops) {
				continue // trailing
			}
			if _, nextIsDefine := ops[i+1].(Define); nextIsDefine {
				continue // overwritten
			}
		}
		out = append(out, op)
	}
	return out
}

func isIdentityMatrix(m [9]float64) bool {
	return m == [9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
}
