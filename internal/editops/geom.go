package editops

import (
	"fmt"
	"math"

	"repro/internal/imaging"
)

// Geom tracks the geometric state of an image as a sequence executes: its
// dimensions and the current Defined Region. The instantiation engine and
// the rule engine both step Geom through the sequence, which is what
// guarantees the rules reason about exactly the pixels the instantiator
// touches (same clipped DR areas, same output dimensions).
type Geom struct {
	// W, H are the current image dimensions.
	W, H int
	// DR is the current Defined Region in image coordinates, possibly
	// extending beyond the canvas; EffectiveDR clips it.
	DR imaging.Rect
}

// StartGeom returns the initial geometry for a w×h base image: DR is the
// whole image.
func StartGeom(w, h int) Geom {
	return Geom{W: w, H: h, DR: imaging.Rect{X0: 0, Y0: 0, X1: w, Y1: h}}
}

// Bounds returns the current canvas rectangle.
func (g Geom) Bounds() imaging.Rect { return imaging.Rect{X0: 0, Y0: 0, X1: g.W, Y1: g.H} }

// EffectiveDR returns the DR clipped to the current canvas — the set of
// pixels an operation actually edits. Its Area() is the paper's |DR|.
func (g Geom) EffectiveDR() imaging.Rect { return g.DR.Canon().Intersect(g.Bounds()) }

// MergeLayout describes the canvas arithmetic of a Merge: where the target
// and the pasted DR block land on the new canvas, how many target pixels are
// overwritten and how many background pixels fill the gap. Both engines
// derive their numbers from this one computation.
type MergeLayout struct {
	// NewW, NewH are the result canvas dimensions.
	NewW, NewH int
	// TargetOffX, TargetOffY is where target pixel (0,0) lands.
	TargetOffX, TargetOffY int
	// Paste is the pasted block's rectangle on the new canvas.
	Paste imaging.Rect
	// BlockW, BlockH are the pasted block's dimensions (= effective DR).
	BlockW, BlockH int
	// TargetW, TargetH echo the target dimensions (0 for a null target).
	TargetW, TargetH int
	// Overwritten is the number of target pixels covered by the block.
	Overwritten int
	// Gap is the number of new-canvas pixels covered by neither the target
	// nor the block; they are filled with the background color.
	Gap int
}

// LayoutMerge computes the canvas arithmetic for pasting a blockW×blockH DR
// at (xp, yp) in the coordinate system of a targetW×targetH image. For a
// null target pass targetW = targetH = 0; the block then becomes the whole
// result. The result canvas is the bounding box of the target rectangle
// [0,targetW)×[0,targetH) and the block rectangle [xp,xp+blockW)×[yp,yp+blockH),
// matching the paper's total-pixel formula for Merge.
func LayoutMerge(blockW, blockH, targetW, targetH, xp, yp int) MergeLayout {
	block := imaging.Rect{X0: xp, Y0: yp, X1: xp + blockW, Y1: yp + blockH}
	target := imaging.Rect{X0: 0, Y0: 0, X1: targetW, Y1: targetH}
	canvas := target.Union(block)
	l := MergeLayout{
		NewW:       canvas.Dx(),
		NewH:       canvas.Dy(),
		TargetOffX: -canvas.X0,
		TargetOffY: -canvas.Y0,
		Paste:      block.Translate(-canvas.X0, -canvas.Y0),
		BlockW:     blockW,
		BlockH:     blockH,
		TargetW:    targetW,
		TargetH:    targetH,
	}
	l.Overwritten = target.Intersect(block).Area()
	l.Gap = l.NewW*l.NewH - targetW*targetH - blockW*blockH + l.Overwritten
	return l
}

// ScaleOutDim returns the output dimension for scaling w source pixels by
// factor s: round-half-away-from-zero of w·s.
func ScaleOutDim(w int, s float64) int {
	return int(math.Round(float64(w) * s))
}

// ScaleSrcIndex returns the source index that output index x samples when
// scaling by s (nearest-neighbor inverse mapping), clamped into [0, w).
func ScaleSrcIndex(x, w int, s float64) int {
	i := int(math.Floor(float64(x) / s))
	if i < 0 {
		i = 0
	}
	if i >= w {
		i = w - 1
	}
	return i
}

// ScaleReplication returns the minimum and maximum number of output indices
// that sample any single source index when scaling w source pixels by s into
// outW output pixels. The rule engine multiplies histogram bounds by these
// factors; computing them by direct counting (rather than floor/ceil
// approximations) keeps the bounds sound for every fractional factor,
// including the truncated final interval.
func ScaleReplication(w int, s float64, outW int) (minRep, maxRep int) {
	if w <= 0 {
		return 0, 0
	}
	counts := make([]int, w)
	for x := 0; x < outW; x++ {
		counts[ScaleSrcIndex(x, w, s)]++
	}
	minRep, maxRep = counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < minRep {
			minRep = c
		}
		if c > maxRep {
			maxRep = c
		}
	}
	return minRep, maxRep
}

// TargetDims resolves a Merge target's dimensions. The database supplies an
// implementation backed by its catalog; tests supply closures.
type TargetDims func(id uint64) (w, h int, err error)

// Step advances the geometry across one operation and returns the new
// geometry plus, for Merge operations, the layout. DR transitions:
//
//   - Define sets the DR.
//   - Combine and Modify leave it unchanged.
//   - Resize-Mutate scales the DR's coordinates by the scale factors.
//   - Move-Mutate leaves the DR rectangle unchanged (the region of the
//     canvas remains selected even though its contents moved).
//   - Merge selects the pasted block on the new canvas.
func (g Geom) Step(op Op, dims TargetDims) (Geom, MergeLayout, error) {
	switch o := op.(type) {
	case Define:
		g.DR = o.Region
		return g, MergeLayout{}, nil
	case Combine, Modify:
		return g, MergeLayout{}, nil
	case Mutate:
		if sx, sy, ok := o.ScaleFactors(); ok && g.DR.Canon().ContainsRect(g.Bounds()) {
			g.W = ScaleOutDim(g.W, sx)
			g.H = ScaleOutDim(g.H, sy)
			dr := g.DR.Canon()
			g.DR = imaging.Rect{
				X0: ScaleOutDim(dr.X0, sx), Y0: ScaleOutDim(dr.Y0, sy),
				X1: ScaleOutDim(dr.X1, sx), Y1: ScaleOutDim(dr.Y1, sy),
			}
		}
		return g, MergeLayout{}, nil
	case Merge:
		eff := g.EffectiveDR()
		tw, th := 0, 0
		if o.Target != NullTarget {
			if dims == nil {
				return g, MergeLayout{}, fmt.Errorf("editops: merge target %d needs a TargetDims resolver", o.Target)
			}
			var err error
			tw, th, err = dims(o.Target)
			if err != nil {
				return g, MergeLayout{}, fmt.Errorf("editops: merge target %d: %w", o.Target, err)
			}
		}
		l := LayoutMerge(eff.Dx(), eff.Dy(), tw, th, o.XP, o.YP)
		g.W, g.H = l.NewW, l.NewH
		g.DR = l.Paste
		return g, l, nil
	default:
		return g, MergeLayout{}, fmt.Errorf("editops: unknown op kind %T", op)
	}
}
