package editops

import (
	"fmt"

	"repro/internal/imaging"
)

// Synthesize produces an operation sequence that transforms base into
// target exactly, demonstrating the completeness property of the operation
// set (Brown, Gruenwald & Speegle 1997: the five operations can perform any
// image transformation by manipulating a single pixel at a time).
//
// Strategy: grow the canvas with an integer resize if the target is larger
// in either dimension, crop to the target's dimensions with a null-target
// Merge, then repair each differing pixel with a 1×1 Define plus Modify.
// The sequence is O(W·H) operations in the worst case — wildly inefficient
// as storage, which is exactly the paper's point: hand-authored edit
// sequences are short, but completeness guarantees nothing is unreachable.
//
// The ops are returned rather than a Sequence because the caller owns the
// base image id. env's background must match the environment used to apply
// the result. Only the resolver-free subset of operations is emitted, so a
// nil env is accepted.
func Synthesize(base, target *imaging.Image, env *Env) ([]Op, error) {
	if target.W == 0 || target.H == 0 {
		if base.W == 0 || base.H == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("editops: cannot synthesize an empty target from a %dx%d base", base.W, base.H)
	}
	if base.W == 0 || base.H == 0 {
		return nil, fmt.Errorf("editops: cannot synthesize from an empty base")
	}
	var ops []Op
	cur := base.Clone()

	// Grow with an exact integer resize if needed.
	fx := (target.W + cur.W - 1) / cur.W
	fy := (target.H + cur.H - 1) / cur.H
	if fx > 1 || fy > 1 {
		grow := ScaleImage(cur.W, cur.H, float64(fx), float64(fy))
		ops = append(ops, grow...)
		var err error
		cur, err = Apply(cur, grow, env)
		if err != nil {
			return nil, fmt.Errorf("editops: synthesize grow step: %w", err)
		}
	}
	// Crop to the target dimensions.
	if cur.W != target.W || cur.H != target.H {
		crop := CropTo(imaging.Rect{X0: 0, Y0: 0, X1: target.W, Y1: target.H})
		ops = append(ops, crop...)
		var err error
		cur, err = Apply(cur, crop, env)
		if err != nil {
			return nil, fmt.Errorf("editops: synthesize crop step: %w", err)
		}
	}
	// Repair pixels one at a time.
	for y := 0; y < target.H; y++ {
		for x := 0; x < target.W; x++ {
			have := cur.At(x, y)
			want := target.At(x, y)
			if have == want {
				continue
			}
			ops = append(ops,
				Define{Region: imaging.Rect{X0: x, Y0: y, X1: x + 1, Y1: y + 1}},
				Modify{Old: have, New: want},
			)
			cur.Set(x, y, want)
		}
	}
	return ops, nil
}
