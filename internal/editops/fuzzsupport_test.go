package editops

import (
	"repro/internal/imaging"
)

// Small helpers shared by the fuzz targets.

func imagingRect(x0, y0, x1, y1 int) imaging.Rect { return imaging.R(x0, y0, x1, y1) }

// NewTestImage builds a deterministic multi-color raster for fuzzing.
func NewTestImage(w, h int) *imaging.Image {
	img := imaging.New(w, h)
	for i := range img.Pix {
		img.Pix[i] = imaging.RGB{R: uint8(i * 37), G: uint8(i * 59), B: uint8(i * 83)}
	}
	return img
}
