package editops

import (
	"math/rand"
	"testing"

	"repro/internal/imaging"
)

// optRandOps generates sequences exercising every rewrite: redundant
// defines, self-recolors, empty DRs, identity mutates, full-canvas crops,
// plus ordinary effective operations.
func optRandOps(rng *rand.Rand, w, h, n int) []Op {
	colors := []imaging.RGB{{R: 200}, {G: 200}, {B: 200}, {R: 255, G: 255, B: 255}}
	ops := make([]Op, 0, n)
	for len(ops) < n {
		switch rng.Intn(12) {
		case 0:
			x0, y0 := rng.Intn(w), rng.Intn(h)
			ops = append(ops, Define{Region: imaging.R(x0, y0, x0+1+rng.Intn(w), y0+1+rng.Intn(h))})
		case 1: // duplicate define
			ops = append(ops, Define{Region: imaging.R(0, 0, w, h)}, Define{Region: imaging.R(0, 0, w/2+1, h)})
		case 2: // empty-effective define
			ops = append(ops, Define{Region: imaging.R(w+5, h+5, w+9, h+9)})
		case 3: // self recolor
			c := colors[rng.Intn(len(colors))]
			ops = append(ops, Modify{Old: c, New: c})
		case 4:
			ops = append(ops, Modify{Old: colors[rng.Intn(len(colors))], New: colors[rng.Intn(len(colors))]})
		case 5:
			ops = append(ops, Combine{Weights: [9]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}})
		case 6: // identity mutate
			ops = append(ops, Mutate{M: [9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}})
		case 7:
			ops = append(ops, Mutate{M: [9]float64{1, 0, float64(rng.Intn(5) - 2), 0, 1, float64(rng.Intn(5) - 2), 0, 0, 1}})
		case 8: // unit resize over a full-canvas define
			ops = append(ops, Define{Region: imaging.R(-2, -2, w+9, h+9)}, Mutate{M: [9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}})
		case 9: // full-canvas crop
			ops = append(ops, Define{Region: imaging.R(0, 0, w+3, h+3)}, Merge{Target: NullTarget})
		case 10:
			ops = append(ops, Merge{Target: NullTarget})
		case 11: // real resize
			ops = append(ops, Define{Region: imaging.R(0, 0, w+9, h+9)}, Mutate{M: [9]float64{2, 0, 0, 0, 2, 0, 0, 0, 1}})
		}
	}
	return ops
}

// TestOptimizePreservesInstantiation is the optimizer's contract: identical
// rasters before and after, with fewer (or equal) operations.
func TestOptimizePreservesInstantiation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		w, h := 2+rng.Intn(8), 2+rng.Intn(8)
		base := NewTestImage(w, h)
		ops := optRandOps(rng, w, h, 1+rng.Intn(10))
		opt := Optimize(ops, w, h)
		if len(opt) > len(ops) {
			t.Fatalf("trial %d: optimizer grew the sequence %d -> %d", trial, len(ops), len(opt))
		}
		want, err := Apply(base, ops, nil)
		if err != nil {
			t.Fatalf("trial %d: apply original: %v", trial, err)
		}
		got, err := Apply(base, opt, nil)
		if err != nil {
			t.Fatalf("trial %d: apply optimized: %v", trial, err)
		}
		if !want.Equal(got) {
			t.Fatalf("trial %d: optimization changed the image (%d ops -> %d)\noriginal:  %v\noptimized: %v",
				trial, len(ops), len(opt), ops, opt)
		}
	}
}

func TestOptimizeDropsEachPattern(t *testing.T) {
	red := imaging.RGB{R: 200}
	blue := imaging.RGB{B: 200}
	cases := []struct {
		name string
		in   []Op
		want int
	}{
		{"self recolor", []Op{Modify{Old: red, New: red}}, 0},
		{"doubled define", []Op{
			Define{Region: imaging.R(0, 0, 2, 2)},
			Define{Region: imaging.R(0, 0, 3, 3)},
			Modify{Old: red, New: blue},
		}, 2},
		{"trailing define", []Op{Modify{Old: red, New: blue}, Define{Region: imaging.R(0, 0, 2, 2)}}, 1},
		{"redundant define", []Op{
			Define{Region: imaging.R(0, 0, 8, 8)}, // initial DR is already the whole image
			Modify{Old: red, New: blue},
		}, 1},
		{"empty DR ops", []Op{
			Define{Region: imaging.R(20, 20, 30, 30)},
			Modify{Old: red, New: blue},
			Combine{Weights: [9]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		}, 0},
		{"identity mutate", []Op{Mutate{M: [9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}}}, 0},
		{"full crop", []Op{Merge{Target: NullTarget}}, 0},
		{"kept crop", append(CropTo(imaging.R(1, 1, 4, 4)), Modify{Old: red, New: blue}), 3},
	}
	for _, c := range cases {
		got := Optimize(c.in, 8, 8)
		if len(got) != c.want {
			t.Errorf("%s: %d ops, want %d (%v)", c.name, len(got), c.want, got)
		}
	}
}

func TestOptimizeKeepsTargetMergeTailVerbatim(t *testing.T) {
	red := imaging.RGB{R: 200}
	in := []Op{
		Modify{Old: red, New: red}, // droppable before the merge
		Merge{Target: 42, XP: 1, YP: 1},
		Modify{Old: red, New: red}, // NOT droppable after (geometry unknown)
		Define{Region: imaging.R(0, 0, 2, 2)},
	}
	// Expected: pre-merge self-recolor dropped, merge kept, post-merge
	// self-recolor kept verbatim (geometry unknown), trailing define
	// dropped (syntactic, resolver-independent).
	got := Optimize(in, 8, 8)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if _, ok := got[0].(Merge); !ok {
		t.Fatalf("merge not first after optimization: %v", got)
	}
	// A trailing define is still dropped from the verbatim tail.
	if _, ok := got[len(got)-1].(Define); ok {
		t.Fatalf("trailing define survived: %v", got)
	}
}

func TestOptimizePreservesWideningClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// rules.SequenceIsWideningFor lives above this package; replicate the
	// observable contract instead: geometry end-state must match.
	for trial := 0; trial < 200; trial++ {
		w, h := 2+rng.Intn(8), 2+rng.Intn(8)
		ops := optRandOps(rng, w, h, 1+rng.Intn(8))
		opt := Optimize(ops, w, h)
		gOrig := StartGeom(w, h)
		gOpt := StartGeom(w, h)
		for _, op := range ops {
			gOrig, _, _ = gOrig.Step(op, nil)
		}
		for _, op := range opt {
			gOpt, _, _ = gOpt.Step(op, nil)
		}
		if gOrig.W != gOpt.W || gOrig.H != gOpt.H {
			t.Fatalf("trial %d: dims diverge %dx%d vs %dx%d", trial, gOrig.W, gOrig.H, gOpt.W, gOpt.H)
		}
		// The final DR itself may differ when a dead trailing Define was
		// dropped; appending one more consumer must equalize behaviour,
		// which TestOptimizePreservesInstantiation already covers through
		// full instantiation.
	}
}
