package editops

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/imaging"
)

// Binary codec. Sequences are what the augmented database persists instead
// of rasters, so the encoding is compact: varints for ids and coordinates,
// IEEE-754 bits for matrix and stencil entries.

// ErrCodec is wrapped by all sequence decode errors.
var ErrCodec = errors.New("editops: invalid sequence encoding")

// EncodeBinary serializes the sequence to its compact binary form.
func EncodeBinary(s *Sequence) []byte {
	buf := make([]byte, 0, 16+len(s.Ops)*16)
	buf = binary.AppendUvarint(buf, s.BaseID)
	buf = binary.AppendUvarint(buf, uint64(len(s.Ops)))
	for _, op := range s.Ops {
		buf = append(buf, byte(op.Kind()))
		switch o := op.(type) {
		case Define:
			buf = binary.AppendVarint(buf, int64(o.Region.X0))
			buf = binary.AppendVarint(buf, int64(o.Region.Y0))
			buf = binary.AppendVarint(buf, int64(o.Region.X1))
			buf = binary.AppendVarint(buf, int64(o.Region.Y1))
		case Combine:
			for _, w := range o.Weights {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
			}
		case Modify:
			buf = append(buf, o.Old.R, o.Old.G, o.Old.B, o.New.R, o.New.G, o.New.B)
		case Mutate:
			for _, v := range o.M {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		case Merge:
			buf = binary.AppendUvarint(buf, o.Target)
			buf = binary.AppendVarint(buf, int64(o.XP))
			buf = binary.AppendVarint(buf, int64(o.YP))
		default:
			panic(fmt.Sprintf("editops: cannot encode op type %T", op))
		}
	}
	return buf
}

// DecodeBinary reconstructs a sequence from EncodeBinary output. It fails on
// truncation, unknown op kinds and trailing garbage.
func DecodeBinary(data []byte) (*Sequence, error) {
	r := &byteReader{data: data}
	baseID, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: base id: %v", ErrCodec, err)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: op count: %v", ErrCodec, err)
	}
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("%w: implausible op count %d", ErrCodec, n)
	}
	s := &Sequence{BaseID: baseID, Ops: make([]Op, 0, n)}
	for i := uint64(0); i < n; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: op %d kind: %v", ErrCodec, i, err)
		}
		var op Op
		switch Kind(kind) {
		case KindDefine:
			var c [4]int64
			for j := range c {
				if c[j], err = binary.ReadVarint(r); err != nil {
					return nil, fmt.Errorf("%w: op %d define: %v", ErrCodec, i, err)
				}
			}
			op = Define{Region: imaging.Rect{X0: int(c[0]), Y0: int(c[1]), X1: int(c[2]), Y1: int(c[3])}}
		case KindCombine:
			var o Combine
			for j := range o.Weights {
				v, err := r.readFloat64()
				if err != nil {
					return nil, fmt.Errorf("%w: op %d combine: %v", ErrCodec, i, err)
				}
				o.Weights[j] = v
			}
			op = o
		case KindModify:
			var b [6]byte
			for j := range b {
				if b[j], err = r.ReadByte(); err != nil {
					return nil, fmt.Errorf("%w: op %d modify: %v", ErrCodec, i, err)
				}
			}
			op = Modify{Old: imaging.RGB{R: b[0], G: b[1], B: b[2]}, New: imaging.RGB{R: b[3], G: b[4], B: b[5]}}
		case KindMutate:
			var o Mutate
			for j := range o.M {
				v, err := r.readFloat64()
				if err != nil {
					return nil, fmt.Errorf("%w: op %d mutate: %v", ErrCodec, i, err)
				}
				o.M[j] = v
			}
			op = o
		case KindMerge:
			target, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("%w: op %d merge target: %v", ErrCodec, i, err)
			}
			xp, err := binary.ReadVarint(r)
			if err != nil {
				return nil, fmt.Errorf("%w: op %d merge xp: %v", ErrCodec, i, err)
			}
			yp, err := binary.ReadVarint(r)
			if err != nil {
				return nil, fmt.Errorf("%w: op %d merge yp: %v", ErrCodec, i, err)
			}
			op = Merge{Target: target, XP: int(xp), YP: int(yp)}
		default:
			return nil, fmt.Errorf("%w: op %d has unknown kind %d", ErrCodec, i, kind)
		}
		// Reject malformed operations (non-finite matrix entries, zero-sum
		// stencils, inverted regions) at the storage boundary, so nothing
		// downstream — the rule engine in particular — ever sees them.
		if err := op.Validate(); err != nil {
			return nil, fmt.Errorf("%w: op %d: %v", ErrCodec, i, err)
		}
		s.Ops = append(s.Ops, op)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(data)-r.pos)
	}
	return s, nil
}

type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *byteReader) readFloat64() (float64, error) {
	if r.pos+8 > len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v, nil
}

// Text codec: one op per line in the format produced by each op's String
// method, preceded by a "base <id>" line. Blank lines and '#' comments are
// allowed. This is the human-readable interchange format used by the CLI.

// FormatText renders the sequence in the text format.
func FormatText(s *Sequence) string {
	var b strings.Builder
	fmt.Fprintf(&b, "base %d\n", s.BaseID)
	for _, op := range s.Ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseText parses the text sequence format.
func ParseText(r io.Reader) (*Sequence, error) {
	sc := bufio.NewScanner(r)
	s := &Sequence{}
	sawBase := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		word := strings.ToLower(fields[0])
		args := fields[1:]
		fail := func(msg string, a ...any) (*Sequence, error) {
			return nil, fmt.Errorf("%w: line %d: %s", ErrCodec, lineNo, fmt.Sprintf(msg, a...))
		}
		switch word {
		case "base":
			if sawBase {
				return fail("duplicate base line")
			}
			if len(args) != 1 {
				return fail("base wants 1 argument")
			}
			id, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				return fail("base id %q: %v", args[0], err)
			}
			s.BaseID = id
			sawBase = true
		case "define":
			c, err := parseInts(args, 4)
			if err != nil {
				return fail("define: %v", err)
			}
			s.Ops = append(s.Ops, Define{Region: imaging.Rect{X0: c[0], Y0: c[1], X1: c[2], Y1: c[3]}})
		case "combine":
			w, err := parseFloats(args, 9)
			if err != nil {
				return fail("combine: %v", err)
			}
			var o Combine
			copy(o.Weights[:], w)
			s.Ops = append(s.Ops, o)
		case "modify":
			if len(args) != 2 {
				return fail("modify wants 2 colors")
			}
			oldC, err := ParseHexColor(args[0])
			if err != nil {
				return fail("modify old: %v", err)
			}
			newC, err := ParseHexColor(args[1])
			if err != nil {
				return fail("modify new: %v", err)
			}
			s.Ops = append(s.Ops, Modify{Old: oldC, New: newC})
		case "mutate":
			m, err := parseFloats(args, 9)
			if err != nil {
				return fail("mutate: %v", err)
			}
			var o Mutate
			copy(o.M[:], m)
			s.Ops = append(s.Ops, o)
		case "merge":
			if len(args) == 1 && strings.EqualFold(args[0], "null") {
				s.Ops = append(s.Ops, Merge{Target: NullTarget})
				break
			}
			if len(args) != 3 {
				return fail("merge wants 'null' or <target> <xp> <yp>")
			}
			target, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				return fail("merge target %q: %v", args[0], err)
			}
			xy, err := parseInts(args[1:], 2)
			if err != nil {
				return fail("merge: %v", err)
			}
			s.Ops = append(s.Ops, Merge{Target: target, XP: xy[0], YP: xy[1]})
		default:
			return fail("unknown operation %q", word)
		}
		if n := len(s.Ops); n > 0 {
			if err := s.Ops[n-1].Validate(); err != nil {
				return fail("%v", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawBase {
		return nil, fmt.Errorf("%w: missing base line", ErrCodec)
	}
	return s, nil
}

// ParseHexColor parses #rrggbb (leading '#' optional).
func ParseHexColor(s string) (imaging.RGB, error) {
	s = strings.TrimPrefix(s, "#")
	if len(s) != 6 {
		return imaging.RGB{}, fmt.Errorf("color %q must be rrggbb", s)
	}
	v, err := strconv.ParseUint(s, 16, 32)
	if err != nil {
		return imaging.RGB{}, fmt.Errorf("color %q: %v", s, err)
	}
	return imaging.RGB{R: uint8(v >> 16), G: uint8(v >> 8), B: uint8(v)}, nil
}

func parseInts(args []string, n int) ([]int, error) {
	if len(args) != n {
		return nil, fmt.Errorf("want %d integers, got %d", n, len(args))
	}
	out := make([]int, n)
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("integer %q: %v", a, err)
		}
		out[i] = v
	}
	return out, nil
}

func parseFloats(args []string, n int) ([]float64, error) {
	if len(args) != n {
		return nil, fmt.Errorf("want %d numbers, got %d", n, len(args))
	}
	out := make([]float64, n)
	for i, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("number %q: %v", a, err)
		}
		out[i] = v
	}
	return out, nil
}
