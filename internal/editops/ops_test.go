package editops

import (
	"strings"
	"testing"

	"repro/internal/imaging"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindDefine:  "define",
		KindCombine: "combine",
		KindModify:  "modify",
		KindMutate:  "mutate",
		KindMerge:   "merge",
		Kind(99):    "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestDefineValidate(t *testing.T) {
	if err := (Define{Region: imaging.R(0, 0, 5, 5)}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Define{Region: imaging.R(5, 0, 0, 5)}).Validate(); err == nil {
		t.Fatal("inverted region accepted")
	}
}

func TestCombineValidate(t *testing.T) {
	ok := Combine{Weights: [9]float64{0, 0, 0, 0, 1, 0, 0, 0, 0}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Combine{}).Validate(); err == nil {
		t.Fatal("zero weights accepted")
	}
	neg := Combine{Weights: [9]float64{1, 1, 1, 1, -1, 1, 1, 1, 1}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestMutateValidateAndClassify(t *testing.T) {
	scale := Mutate{M: [9]float64{2, 0, 0, 0, 3, 0, 0, 0, 1}}
	if err := scale.Validate(); err != nil {
		t.Fatal(err)
	}
	sx, sy, ok := scale.ScaleFactors()
	if !ok || sx != 2 || sy != 3 {
		t.Fatalf("ScaleFactors = %v %v %v", sx, sy, ok)
	}
	translate := Mutate{M: [9]float64{1, 0, 5, 0, 1, -2, 0, 0, 1}}
	if _, _, ok := translate.ScaleFactors(); ok {
		t.Fatal("translation classified as scale")
	}
	if !translate.IsRigid() {
		t.Fatal("translation not rigid")
	}
	if scale.IsRigid() {
		t.Fatal("2x3 scale classified rigid")
	}
	projective := Mutate{M: [9]float64{1, 0, 0, 0, 1, 0, 0.1, 0, 1}}
	if err := projective.Validate(); err == nil {
		t.Fatal("projective matrix accepted")
	}
	negScale := Mutate{M: [9]float64{-2, 0, 0, 0, 2, 0, 0, 0, 1}}
	if _, _, ok := negScale.ScaleFactors(); ok {
		t.Fatal("negative scale classified as resize")
	}
}

func TestMutateTransformRounds(t *testing.T) {
	rot := Mutate{M: [9]float64{0, -1, 0, 1, 0, 0, 0, 0, 1}} // 90° CCW about origin
	x, y := rot.Transform(3, 1)
	if x != -1 || y != 3 {
		t.Fatalf("Transform(3,1) = (%d,%d)", x, y)
	}
}

func TestSequenceValidate(t *testing.T) {
	s := &Sequence{BaseID: 1, Ops: []Op{Define{Region: imaging.R(0, 0, 2, 2)}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Sequence{}).Validate(); err == nil {
		t.Fatal("zero base id accepted")
	}
	bad := &Sequence{BaseID: 1, Ops: []Op{Combine{}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "op 0") {
		t.Fatalf("bad op not reported with index: %v", err)
	}
}

func TestSequenceClone(t *testing.T) {
	s := &Sequence{BaseID: 3, Ops: []Op{Modify{}}}
	c := s.Clone()
	c.Ops = append(c.Ops, Define{})
	c.BaseID = 9
	if s.BaseID != 3 || len(s.Ops) != 1 {
		t.Fatal("clone mutated original")
	}
}

func TestMergeTargets(t *testing.T) {
	s := &Sequence{BaseID: 1, Ops: []Op{
		Merge{Target: 5},
		Merge{Target: NullTarget},
		Merge{Target: 7},
		Merge{Target: 5},
	}}
	got := s.MergeTargets()
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("MergeTargets = %v", got)
	}
	if (&Sequence{BaseID: 1}).MergeTargets() != nil {
		t.Fatal("empty sequence has targets")
	}
}

func TestGeomStepDefine(t *testing.T) {
	g := StartGeom(10, 10)
	if g.EffectiveDR() != imaging.R(0, 0, 10, 10) {
		t.Fatalf("initial DR = %v", g.EffectiveDR())
	}
	g2, _, err := g.Step(Define{Region: imaging.R(-5, 2, 4, 20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.EffectiveDR() != imaging.R(0, 2, 4, 10) {
		t.Fatalf("clipped DR = %v", g2.EffectiveDR())
	}
	if g2.W != 10 || g2.H != 10 {
		t.Fatal("define changed dims")
	}
}

func TestGeomStepScaleChangesDims(t *testing.T) {
	g := StartGeom(10, 8)
	g2, _, err := g.Step(Mutate{M: [9]float64{2, 0, 0, 0, 3, 0, 0, 0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.W != 20 || g2.H != 24 {
		t.Fatalf("scaled dims = %dx%d", g2.W, g2.H)
	}
	if g2.DR != imaging.R(0, 0, 20, 24) {
		t.Fatalf("scaled DR = %v", g2.DR)
	}
}

func TestGeomStepScaleWithPartialDRIsMove(t *testing.T) {
	g := StartGeom(10, 8)
	g, _, _ = g.Step(Define{Region: imaging.R(0, 0, 5, 5)}, nil)
	g2, _, err := g.Step(Mutate{M: [9]float64{2, 0, 0, 0, 2, 0, 0, 0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.W != 10 || g2.H != 8 {
		t.Fatalf("partial-DR scale changed dims to %dx%d", g2.W, g2.H)
	}
}

func TestGeomStepMergeNull(t *testing.T) {
	g := StartGeom(10, 10)
	g, _, _ = g.Step(Define{Region: imaging.R(2, 3, 6, 8)}, nil)
	g2, l, err := g.Step(Merge{Target: NullTarget}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.W != 4 || g2.H != 5 {
		t.Fatalf("null merge dims = %dx%d", g2.W, g2.H)
	}
	if l.Overwritten != 0 || l.Gap != 0 {
		t.Fatalf("null merge layout OV=%d GAP=%d", l.Overwritten, l.Gap)
	}
	if g2.DR != imaging.R(0, 0, 4, 5) {
		t.Fatalf("null merge DR = %v", g2.DR)
	}
}

func TestGeomStepMergeTargetNeedsResolver(t *testing.T) {
	g := StartGeom(4, 4)
	if _, _, err := g.Step(Merge{Target: 9}, nil); err == nil {
		t.Fatal("merge without resolver succeeded")
	}
}

func TestLayoutMergeInsideTarget(t *testing.T) {
	l := LayoutMerge(3, 2, 10, 10, 4, 5)
	if l.NewW != 10 || l.NewH != 10 {
		t.Fatalf("dims %dx%d", l.NewW, l.NewH)
	}
	if l.Overwritten != 6 || l.Gap != 0 {
		t.Fatalf("OV=%d GAP=%d", l.Overwritten, l.Gap)
	}
	if l.Paste != imaging.R(4, 5, 7, 7) {
		t.Fatalf("paste = %v", l.Paste)
	}
}

func TestLayoutMergeOverhang(t *testing.T) {
	// 3x3 block at (8,8) on a 10x10 target: canvas grows to 11x11.
	l := LayoutMerge(3, 3, 10, 10, 8, 8)
	if l.NewW != 11 || l.NewH != 11 {
		t.Fatalf("dims %dx%d", l.NewW, l.NewH)
	}
	if l.Overwritten != 4 { // [8,10)x[8,10)
		t.Fatalf("OV = %d", l.Overwritten)
	}
	// gap = 121 - 100 - 9 + 4 = 16
	if l.Gap != 16 {
		t.Fatalf("GAP = %d", l.Gap)
	}
}

func TestLayoutMergeNegativePlacement(t *testing.T) {
	l := LayoutMerge(4, 4, 10, 10, -2, -3)
	if l.NewW != 12 || l.NewH != 13 {
		t.Fatalf("dims %dx%d", l.NewW, l.NewH)
	}
	if l.TargetOffX != 2 || l.TargetOffY != 3 {
		t.Fatalf("target offset (%d,%d)", l.TargetOffX, l.TargetOffY)
	}
	if l.Paste != imaging.R(0, 0, 4, 4) {
		t.Fatalf("paste = %v", l.Paste)
	}
	if l.Overwritten != 2*1 { // block [-2,2)x[-3,1) ∩ [0,10)² = [0,2)x[0,1)
		t.Fatalf("OV = %d", l.Overwritten)
	}
}

func TestScaleReplicationExactForIntegers(t *testing.T) {
	for _, s := range []float64{1, 2, 3, 5} {
		outW := ScaleOutDim(7, s)
		lo, hi := ScaleReplication(7, s, outW)
		if lo != int(s) || hi != int(s) {
			t.Fatalf("s=%v: replication [%d,%d]", s, lo, hi)
		}
	}
}

func TestScaleReplicationBracketsFractional(t *testing.T) {
	for _, s := range []float64{0.5, 1.3, 1.5, 2.4, 2.7, 0.25} {
		for _, w := range []int{1, 2, 3, 5, 8, 13, 100} {
			outW := ScaleOutDim(w, s)
			lo, hi := ScaleReplication(w, s, outW)
			if lo > hi {
				t.Fatalf("w=%d s=%v: lo %d > hi %d", w, s, lo, hi)
			}
			// Total replication must equal the output width.
			if lo*w > outW || hi*w < outW {
				t.Fatalf("w=%d s=%v outW=%d: bounds [%d,%d] cannot sum to total", w, s, outW, lo, hi)
			}
		}
	}
}

func TestScaleSrcIndexStaysInRange(t *testing.T) {
	for _, s := range []float64{0.3, 0.5, 1.1, 1.9, 2.5, 3.7} {
		for _, w := range []int{1, 2, 5, 9} {
			outW := ScaleOutDim(w, s)
			for x := 0; x < outW; x++ {
				i := ScaleSrcIndex(x, w, s)
				if i < 0 || i >= w {
					t.Fatalf("w=%d s=%v x=%d: src %d out of range", w, s, x, i)
				}
			}
		}
	}
}

func TestOpStrings(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Define{Region: imaging.R(1, 2, 3, 4)}, "define 1 2 3 4"},
		{Modify{Old: imaging.RGB{R: 255, G: 0, B: 0}, New: imaging.RGB{R: 0, G: 0, B: 255}}, "modify #ff0000 #0000ff"},
		{Merge{Target: NullTarget}, "merge null"},
		{Merge{Target: 12, XP: -1, YP: 4}, "merge 12 -1 4"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if !strings.HasPrefix((Combine{Weights: [9]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}}).String(), "combine 1 1") {
		t.Error("combine string malformed")
	}
	if !strings.HasPrefix((Mutate{M: [9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}}).String(), "mutate 1 0") {
		t.Error("mutate string malformed")
	}
}
