package editops

import (
	"math/rand"
	"testing"

	"repro/internal/imaging"
)

func randomImageFor(rng *rand.Rand, w, h, palette int) *imaging.Image {
	colors := make([]imaging.RGB, palette)
	for i := range colors {
		colors[i] = imaging.RGB{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))}
	}
	img := imaging.New(w, h)
	for i := range img.Pix {
		img.Pix[i] = colors[rng.Intn(palette)]
	}
	return img
}

// TestSynthesizeCompleteness is the completeness property from Brown,
// Gruenwald & Speegle 1997: any base→target transformation is expressible
// with the five operations.
func TestSynthesizeCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ bw, bh, tw, th int }{
		{4, 4, 4, 4}, // same dims
		{6, 6, 3, 5}, // shrink
		{3, 3, 7, 8}, // grow
		{5, 2, 2, 5}, // reshape
		{1, 1, 4, 4}, // from a single pixel
		{8, 8, 1, 1}, // to a single pixel
	}
	for _, c := range cases {
		base := randomImageFor(rng, c.bw, c.bh, 4)
		target := randomImageFor(rng, c.tw, c.th, 4)
		ops, err := Synthesize(base, target, nil)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		got, err := Apply(base, ops, nil)
		if err != nil {
			t.Fatalf("%+v: apply: %v", c, err)
		}
		if !got.Equal(target) {
			t.Fatalf("%+v: synthesized image differs in %d pixels", c, got.DiffCount(target))
		}
	}
}

func TestSynthesizeIdenticalImagesIsShort(t *testing.T) {
	img := imaging.NewFilled(5, 5, imaging.RGB{R: 9, G: 9, B: 9})
	ops, err := Synthesize(img, img.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("identical images produced %d ops", len(ops))
	}
}

func TestSynthesizeSinglePixelChange(t *testing.T) {
	base := imaging.NewFilled(4, 4, imaging.RGB{R: 1, G: 1, B: 1})
	target := base.Clone()
	target.Set(2, 3, imaging.RGB{R: 200, G: 0, B: 0})
	ops, err := Synthesize(base, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 { // one Define + one Modify
		t.Fatalf("single-pixel change used %d ops", len(ops))
	}
}

func TestSynthesizeEmptyTargetsError(t *testing.T) {
	full := imaging.NewFilled(2, 2, imaging.RGB{})
	empty := imaging.New(0, 0)
	if _, err := Synthesize(full, empty, nil); err == nil {
		t.Fatal("empty target accepted")
	}
	if _, err := Synthesize(empty, full, nil); err == nil {
		t.Fatal("empty base accepted")
	}
	if ops, err := Synthesize(empty, empty, nil); err != nil || len(ops) != 0 {
		t.Fatalf("empty→empty: %v %v", ops, err)
	}
}

func TestSynthesizeWithBackgroundEnv(t *testing.T) {
	env := &Env{Background: imaging.RGB{R: 255, G: 255, B: 255}}
	base := randomImageFor(rand.New(rand.NewSource(3)), 3, 3, 3)
	target := randomImageFor(rand.New(rand.NewSource(4)), 6, 2, 3)
	ops, err := Synthesize(base, target, env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(base, ops, env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(target) {
		t.Fatal("synthesis with custom background failed")
	}
}
