package catalog

import (
	"errors"
	"testing"

	"repro/internal/editops"
	"repro/internal/histogram"
)

func histFor(w, h int) *histogram.Histogram {
	h2 := histogram.New(8)
	h2.Counts[0] = w * h
	h2.Total = w * h
	return h2
}

func TestAddBinaryAndGet(t *testing.T) {
	c := New()
	id, err := c.AddBinary("flag-1", 4, 4, histFor(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first id = %d", id)
	}
	obj, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Kind != KindBinary || obj.Name != "flag-1" || obj.W != 4 {
		t.Fatalf("object %+v", obj)
	}
	if _, err := c.Get(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing id error = %v", err)
	}
}

func TestAddBinaryValidation(t *testing.T) {
	c := New()
	if _, err := c.AddBinary("x", 4, 4, nil); err == nil {
		t.Fatal("nil histogram accepted")
	}
	if _, err := c.AddBinary("x", 0, 4, histFor(0, 4)); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := c.AddBinary("x", 4, 4, histFor(2, 2)); err == nil {
		t.Fatal("mismatched total accepted")
	}
}

func TestAddEditedLinksToBase(t *testing.T) {
	c := New()
	base, _ := c.AddBinary("b", 4, 4, histFor(4, 4))
	seq := &editops.Sequence{BaseID: base, Ops: []editops.Op{editops.Modify{}}}
	id, err := c.AddEdited("e", seq, true)
	if err != nil {
		t.Fatal(err)
	}
	kids := c.EditedOf(base)
	if len(kids) != 1 || kids[0] != id {
		t.Fatalf("EditedOf = %v", kids)
	}
	got, err := c.BaseOf(id)
	if err != nil || got != base {
		t.Fatalf("BaseOf = %d, %v", got, err)
	}
	if _, err := c.BaseOf(base); err == nil {
		t.Fatal("BaseOf on binary succeeded")
	}
}

func TestAddEditedValidation(t *testing.T) {
	c := New()
	base, _ := c.AddBinary("b", 4, 4, histFor(4, 4))
	if _, err := c.AddEdited("e", nil, true); err == nil {
		t.Fatal("nil sequence accepted")
	}
	if _, err := c.AddEdited("e", &editops.Sequence{BaseID: 999}, true); err == nil {
		t.Fatal("dangling base accepted")
	}
	// Edited image cannot be the base of another edited image.
	seq := &editops.Sequence{BaseID: base}
	eid, _ := c.AddEdited("e", seq, true)
	if _, err := c.AddEdited("e2", &editops.Sequence{BaseID: eid}, true); err == nil {
		t.Fatal("edited base accepted")
	}
	// Merge targets must exist and be binary.
	bad := &editops.Sequence{BaseID: base, Ops: []editops.Op{editops.Merge{Target: 777}}}
	if _, err := c.AddEdited("e3", bad, false); err == nil {
		t.Fatal("dangling merge target accepted")
	}
	badKind := &editops.Sequence{BaseID: base, Ops: []editops.Op{editops.Merge{Target: eid}}}
	if _, err := c.AddEdited("e4", badKind, false); err == nil {
		t.Fatal("edited merge target accepted")
	}
}

func TestKindAccessors(t *testing.T) {
	c := New()
	b, _ := c.AddBinary("b", 2, 2, histFor(2, 2))
	e, _ := c.AddEdited("e", &editops.Sequence{BaseID: b}, true)
	if _, err := c.Binary(b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Binary(e); err == nil {
		t.Fatal("Binary returned edited object")
	}
	if _, err := c.Edited(e); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Edited(b); err == nil {
		t.Fatal("Edited returned binary object")
	}
}

func TestOrderingAndCounts(t *testing.T) {
	c := New()
	var bids []uint64
	for i := 0; i < 3; i++ {
		id, _ := c.AddBinary("b", 2, 2, histFor(2, 2))
		bids = append(bids, id)
	}
	e1, _ := c.AddEdited("e1", &editops.Sequence{BaseID: bids[1]}, true)
	e2, _ := c.AddEdited("e2", &editops.Sequence{BaseID: bids[1]}, false)
	got := c.Binaries()
	for i, id := range bids {
		if got[i] != id {
			t.Fatalf("Binaries order %v", got)
		}
	}
	eids := c.EditedIDs()
	if len(eids) != 2 || eids[0] != e1 || eids[1] != e2 {
		t.Fatalf("EditedIDs %v", eids)
	}
	nb, ne := c.Len()
	if nb != 3 || ne != 2 {
		t.Fatalf("Len = %d,%d", nb, ne)
	}
	all := c.AllIDs()
	if len(all) != 5 {
		t.Fatalf("AllIDs %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatal("AllIDs not sorted")
		}
	}
}

func TestStats(t *testing.T) {
	c := New()
	b, _ := c.AddBinary("b", 2, 2, histFor(2, 2))
	c.AddEdited("e1", &editops.Sequence{BaseID: b, Ops: []editops.Op{editops.Modify{}, editops.Modify{}}}, true)
	c.AddEdited("e2", &editops.Sequence{BaseID: b, Ops: []editops.Op{editops.Modify{}, editops.Modify{}, editops.Modify{}, editops.Modify{}}}, false)
	s := c.Stats()
	if s.Images != 3 || s.Binaries != 1 || s.Edited != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.WideningOnly != 1 || s.NonWidening != 1 {
		t.Fatalf("widening split %+v", s)
	}
	if s.AvgOpsPerEdited != 3 {
		t.Fatalf("avg ops %v", s.AvgOpsPerEdited)
	}
}

func TestRestoreObject(t *testing.T) {
	c := New()
	hist := histFor(2, 2)
	if err := c.RestoreObject(&Object{ID: 10, Kind: KindBinary, W: 2, H: 2, Hist: hist}); err != nil {
		t.Fatal(err)
	}
	seq := &editops.Sequence{BaseID: 10}
	if err := c.RestoreObject(&Object{ID: 12, Kind: KindEdited, Seq: seq, Widening: true}); err != nil {
		t.Fatal(err)
	}
	// Next allocation continues past restored ids.
	id, _ := c.AddBinary("new", 2, 2, histFor(2, 2))
	if id != 13 {
		t.Fatalf("next id = %d, want 13", id)
	}
	// Duplicate id rejected.
	if err := c.RestoreObject(&Object{ID: 10, Kind: KindBinary, W: 2, H: 2, Hist: hist}); err == nil {
		t.Fatal("duplicate restore accepted")
	}
	// Edited before its base rejected.
	if err := c.RestoreObject(&Object{ID: 20, Kind: KindEdited, Seq: &editops.Sequence{BaseID: 19}}); err == nil {
		t.Fatal("orphan restore accepted")
	}
	// Incomplete binary rejected.
	if err := c.RestoreObject(&Object{ID: 21, Kind: KindBinary}); err == nil {
		t.Fatal("incomplete binary restore accepted")
	}
	if err := c.RestoreObject(&Object{ID: 22, Kind: Kind(9)}); err == nil {
		t.Fatal("unknown kind restore accepted")
	}
	if err := c.RestoreObject(nil); err == nil {
		t.Fatal("nil restore accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindBinary.String() != "binary" || KindEdited.String() != "edited" {
		t.Fatal("kind names wrong")
	}
	if Kind(7).String() != "kind(7)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestDeleteEdited(t *testing.T) {
	c := New()
	b, _ := c.AddBinary("b", 2, 2, histFor(2, 2))
	tgt, _ := c.AddBinary("t", 2, 2, histFor(2, 2))
	seq := &editops.Sequence{BaseID: b, Ops: []editops.Op{editops.Merge{Target: tgt}}}
	e, _ := c.AddEdited("e", seq, false)

	// Binary deletes blocked while referenced.
	if err := c.Delete(b); !errors.Is(err, ErrInUse) {
		t.Fatalf("delete base: %v", err)
	}
	if err := c.Delete(tgt); !errors.Is(err, ErrInUse) {
		t.Fatalf("delete target: %v", err)
	}
	if err := c.Delete(e); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(e); !errors.Is(err, ErrNotFound) {
		t.Fatal("edited object survived delete")
	}
	if len(c.EditedOf(b)) != 0 {
		t.Fatal("children list not updated")
	}
	// Refcount released: both binaries now deletable.
	if err := c.Delete(b); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(tgt); err != nil {
		t.Fatal(err)
	}
	nb, ne := c.Len()
	if nb != 0 || ne != 0 {
		t.Fatalf("len after deletes: %d %d", nb, ne)
	}
	if err := c.Delete(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestDeleteSharedMergeTargetRefcount(t *testing.T) {
	c := New()
	b, _ := c.AddBinary("b", 2, 2, histFor(2, 2))
	tgt, _ := c.AddBinary("t", 2, 2, histFor(2, 2))
	mk := func() uint64 {
		id, err := c.AddEdited("e", &editops.Sequence{BaseID: b, Ops: []editops.Op{editops.Merge{Target: tgt}}}, false)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	e1, e2 := mk(), mk()
	c.Delete(e1)
	if err := c.Delete(tgt); !errors.Is(err, ErrInUse) {
		t.Fatal("target deletable while still referenced by e2")
	}
	c.Delete(e2)
	if err := c.Delete(tgt); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreObjectRebuildsTargetRefs(t *testing.T) {
	c := New()
	hist := histFor(2, 2)
	c.RestoreObject(&Object{ID: 1, Kind: KindBinary, W: 2, H: 2, Hist: hist})
	c.RestoreObject(&Object{ID: 2, Kind: KindBinary, W: 2, H: 2, Hist: histFor(2, 2)})
	seq := &editops.Sequence{BaseID: 1, Ops: []editops.Op{editops.Merge{Target: 2}}}
	c.RestoreObject(&Object{ID: 3, Kind: KindEdited, Seq: seq})
	if err := c.Delete(2); !errors.Is(err, ErrInUse) {
		t.Fatalf("restored refcount missing: %v", err)
	}
}

func TestAddBinaryWithID(t *testing.T) {
	c := New()
	id, err := c.AddBinaryWithID(7, "seven", 4, 4, histFor(4, 4))
	if err != nil || id != 7 {
		t.Fatalf("AddBinaryWithID(7) = %d, %v", id, err)
	}
	// The allocator continues past the claimed id.
	next, err := c.AddBinary("eight", 4, 4, histFor(4, 4))
	if err != nil || next != 8 {
		t.Fatalf("next auto id = %d, %v", next, err)
	}
	// Claiming a taken id is a distinct, matchable error.
	if _, err := c.AddBinaryWithID(7, "again", 4, 4, histFor(4, 4)); !errors.Is(err, ErrIDTaken) {
		t.Fatalf("reclaim error = %v, want ErrIDTaken", err)
	}
	// Claiming below the watermark works when the id is free.
	id, err = c.AddBinaryWithID(3, "three", 4, 4, histFor(4, 4))
	if err != nil || id != 3 {
		t.Fatalf("AddBinaryWithID(3) = %d, %v", id, err)
	}
	if next, _ := c.AddBinary("nine", 4, 4, histFor(4, 4)); next != 9 {
		t.Fatalf("low claim must not rewind the allocator: got %d", next)
	}
}

func TestAddEditedWithID(t *testing.T) {
	c := New()
	base, err := c.AddBinary("base", 4, 4, histFor(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	seq := &editops.Sequence{BaseID: base, Ops: []editops.Op{editops.Combine{Weights: [9]float64{1, 0, 0, 0, 0, 0, 0, 0, 0}}}}
	id, err := c.AddEditedWithID(5, "edit", seq, true)
	if err != nil || id != 5 {
		t.Fatalf("AddEditedWithID(5) = %d, %v", id, err)
	}
	if _, err := c.AddEditedWithID(5, "dup", seq.Clone(), true); !errors.Is(err, ErrIDTaken) {
		t.Fatalf("reclaim error = %v, want ErrIDTaken", err)
	}
	// Id 0 delegates to the allocator, same as AddEdited.
	id, err = c.AddEditedWithID(0, "auto", seq.Clone(), true)
	if err != nil || id != 6 {
		t.Fatalf("AddEditedWithID(0) = %d, %v", id, err)
	}
}
