// Package catalog maintains the object metadata of the augmented image
// database: binary (raster) images with their extracted histograms, edited
// images stored as operation sequences, and the base↔edited connections the
// paper uses to return an edited image's original alongside it. The catalog
// holds no pixels; rasters live in the blob store.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/editops"
	"repro/internal/histogram"
)

// Kind distinguishes the two storage representations.
type Kind uint8

const (
	// KindBinary is a conventionally stored raster image with an extracted
	// histogram signature.
	KindBinary Kind = iota + 1
	// KindEdited is an image stored as a base reference plus an editing
	// sequence; it has no materialized histogram.
	KindEdited
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBinary:
		return "binary"
	case KindEdited:
		return "edited"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Object is one catalog entry. Binary objects carry W/H/Hist; edited
// objects carry Seq and the widening classification computed at insert.
type Object struct {
	ID   uint64
	Kind Kind
	// Name is an optional human label ("flag-042", "helmet-007-edit-3").
	Name string

	// Binary-image fields.
	W, H int
	Hist *histogram.Histogram

	// Edited-image fields.
	Seq *editops.Sequence
	// Widening records whether every operation in Seq has a bound-widening
	// rule under the database's geometry (rules.SequenceIsWideningFor).
	Widening bool
}

// ErrNotFound is returned for lookups of unknown object ids.
var ErrNotFound = errors.New("catalog: object not found")

// ErrIDTaken is returned by the WithID insert variants when the requested
// id is already occupied.
var ErrIDTaken = errors.New("catalog: id already in use")

// Catalog is an in-memory object directory safe for concurrent readers and
// a single writer. Persistence is layered on top by internal/core using the
// blob store.
type Catalog struct {
	mu       sync.RWMutex
	nextID   uint64              // guarded by mu
	objects  map[uint64]*Object  // guarded by mu
	binaries []uint64            // insertion-ordered binary ids; guarded by mu
	edited   []uint64            // insertion-ordered edited ids; guarded by mu
	children map[uint64][]uint64 // base id -> edited ids derived from it; guarded by mu
	// targetRefs counts, per binary image, how many edited sequences use it
	// as a Merge target; such images cannot be deleted while referenced.
	targetRefs map[uint64]int // guarded by mu
}

// New returns an empty catalog. Ids start at 1; 0 is reserved (it is the
// null Merge target).
func New() *Catalog {
	return &Catalog{
		nextID:     1,
		objects:    make(map[uint64]*Object),
		children:   make(map[uint64][]uint64),
		targetRefs: make(map[uint64]int),
	}
}

// AddBinary registers a binary image and returns its id.
func (c *Catalog) AddBinary(name string, w, h int, hist *histogram.Histogram) (uint64, error) {
	return c.AddBinaryWithID(0, name, w, h, hist)
}

// AddBinaryWithID registers a binary image under an explicit id (0 means
// "allocate the next sequential id", which is AddBinary). Cluster
// coordinators use explicit ids to keep a single global id space across
// shards; ErrIDTaken reports collisions.
func (c *Catalog) AddBinaryWithID(id uint64, name string, w, h int, hist *histogram.Histogram) (uint64, error) {
	if hist == nil {
		return 0, errors.New("catalog: binary image needs a histogram")
	}
	if w <= 0 || h <= 0 {
		return 0, fmt.Errorf("catalog: invalid dimensions %dx%d", w, h)
	}
	if hist.Total != w*h {
		return 0, fmt.Errorf("catalog: histogram total %d does not match %dx%d", hist.Total, w, h)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.claimIDLocked(id)
	if err != nil {
		return 0, err
	}
	c.objects[id] = &Object{ID: id, Kind: KindBinary, Name: name, W: w, H: h, Hist: hist}
	c.binaries = append(c.binaries, id)
	return id, nil
}

// AddEdited registers an edited image. The sequence's base and all Merge
// targets must already be binary objects; widening is the caller-computed
// classification (the caller owns the rules dependency).
func (c *Catalog) AddEdited(name string, seq *editops.Sequence, widening bool) (uint64, error) {
	return c.AddEditedWithID(0, name, seq, widening)
}

// AddEditedWithID is AddEdited with an explicit id (0 = allocate); see
// AddBinaryWithID.
func (c *Catalog) AddEditedWithID(id uint64, name string, seq *editops.Sequence, widening bool) (uint64, error) {
	if seq == nil {
		return 0, errors.New("catalog: edited image needs a sequence")
	}
	if err := seq.Validate(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	base, ok := c.objects[seq.BaseID]
	if !ok || base.Kind != KindBinary {
		return 0, fmt.Errorf("catalog: base %d: %w", seq.BaseID, ErrNotFound)
	}
	for _, t := range seq.MergeTargets() {
		tgt, ok := c.objects[t]
		if !ok || tgt.Kind != KindBinary {
			return 0, fmt.Errorf("catalog: merge target %d: %w", t, ErrNotFound)
		}
	}
	id, err := c.claimIDLocked(id)
	if err != nil {
		return 0, err
	}
	c.objects[id] = &Object{ID: id, Kind: KindEdited, Name: name, Seq: seq, Widening: widening}
	c.edited = append(c.edited, id)
	c.children[seq.BaseID] = append(c.children[seq.BaseID], id)
	for _, t := range seq.MergeTargets() {
		c.targetRefs[t]++
	}
	return id, nil
}

// claimIDLocked resolves an insert id: 0 allocates the next sequential id,
// anything else claims that exact id and bumps the allocator past it so
// later automatic inserts never collide. Callers hold mu.
func (c *Catalog) claimIDLocked(id uint64) (uint64, error) {
	if id == 0 {
		id = c.nextID
		c.nextID++
		return id, nil
	}
	if _, exists := c.objects[id]; exists {
		return 0, fmt.Errorf("catalog: id %d: %w", id, ErrIDTaken)
	}
	if id >= c.nextID {
		c.nextID = id + 1
	}
	return id, nil
}

// Get returns an object by id.
func (c *Catalog) Get(id uint64) (*Object, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	obj, ok := c.objects[id]
	if !ok {
		return nil, fmt.Errorf("catalog: id %d: %w", id, ErrNotFound)
	}
	return obj, nil
}

// Binary returns a binary object by id, failing on edited objects.
func (c *Catalog) Binary(id uint64) (*Object, error) {
	obj, err := c.Get(id)
	if err != nil {
		return nil, err
	}
	if obj.Kind != KindBinary {
		return nil, fmt.Errorf("catalog: id %d is %s, want binary", id, obj.Kind)
	}
	return obj, nil
}

// Edited returns an edited object by id, failing on binary objects.
func (c *Catalog) Edited(id uint64) (*Object, error) {
	obj, err := c.Get(id)
	if err != nil {
		return nil, err
	}
	if obj.Kind != KindEdited {
		return nil, fmt.Errorf("catalog: id %d is %s, want edited", id, obj.Kind)
	}
	return obj, nil
}

// Binaries returns the binary image ids in insertion order (copied).
func (c *Catalog) Binaries() []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]uint64, len(c.binaries))
	copy(out, c.binaries)
	return out
}

// EditedIDs returns the edited image ids in insertion order (copied).
func (c *Catalog) EditedIDs() []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]uint64, len(c.edited))
	copy(out, c.edited)
	return out
}

// EditedOf returns the edited images derived from a base, in insertion
// order (copied).
func (c *Catalog) EditedOf(baseID uint64) []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	kids := c.children[baseID]
	out := make([]uint64, len(kids))
	copy(out, kids)
	return out
}

// BaseOf returns the base image id of an edited object.
func (c *Catalog) BaseOf(editedID uint64) (uint64, error) {
	obj, err := c.Edited(editedID)
	if err != nil {
		return 0, err
	}
	return obj.Seq.BaseID, nil
}

// Len returns (binary, edited) object counts.
func (c *Catalog) Len() (binaries, edited int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.binaries), len(c.edited)
}

// Stats summarizes the catalog the way the paper's Table 2 does.
type Stats struct {
	Images          int // total objects
	Binaries        int
	Edited          int
	WideningOnly    int     // edited images with only bound-widening rules
	NonWidening     int     // edited images with ≥1 non-widening rule
	AvgOpsPerEdited float64 // average sequence length
}

// Stats computes catalog statistics.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Stats{Binaries: len(c.binaries), Edited: len(c.edited)}
	s.Images = s.Binaries + s.Edited
	totalOps := 0
	for _, id := range c.edited {
		obj := c.objects[id]
		totalOps += len(obj.Seq.Ops)
		if obj.Widening {
			s.WideningOnly++
		} else {
			s.NonWidening++
		}
	}
	if s.Edited > 0 {
		s.AvgOpsPerEdited = float64(totalOps) / float64(s.Edited)
	}
	return s
}

// RestoreObject reinstates an object with its original id when reopening a
// persisted database. Objects may arrive in any order as long as bases
// precede the edited images referencing them; RestoreObject enforces the
// same referential checks as the Add methods.
func (c *Catalog) RestoreObject(obj *Object) error {
	if obj == nil || obj.ID == 0 {
		return errors.New("catalog: restore of nil or id-0 object")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.objects[obj.ID]; exists {
		return fmt.Errorf("catalog: restore: id %d already present", obj.ID)
	}
	switch obj.Kind {
	case KindBinary:
		if obj.Hist == nil || obj.W <= 0 || obj.H <= 0 {
			return fmt.Errorf("catalog: restore binary %d: incomplete", obj.ID)
		}
	case KindEdited:
		if obj.Seq == nil {
			return fmt.Errorf("catalog: restore edited %d: missing sequence", obj.ID)
		}
		base, ok := c.objects[obj.Seq.BaseID]
		if !ok || base.Kind != KindBinary {
			return fmt.Errorf("catalog: restore edited %d: base %d: %w", obj.ID, obj.Seq.BaseID, ErrNotFound)
		}
	default:
		return fmt.Errorf("catalog: restore %d: unknown kind %d", obj.ID, obj.Kind)
	}
	c.objects[obj.ID] = obj
	if obj.Kind == KindBinary {
		c.binaries = append(c.binaries, obj.ID)
	} else {
		c.edited = append(c.edited, obj.ID)
		c.children[obj.Seq.BaseID] = append(c.children[obj.Seq.BaseID], obj.ID)
		for _, tgt := range obj.Seq.MergeTargets() {
			c.targetRefs[tgt]++
		}
	}
	if obj.ID >= c.nextID {
		c.nextID = obj.ID + 1
	}
	return nil
}

// UpdateEdited replaces an edited object's sequence (same base) and its
// widening classification, keeping Merge-target reference counts accurate.
// The new sequence's base must equal the existing one — re-basing would
// silently change the image's identity.
func (c *Catalog) UpdateEdited(id uint64, seq *editops.Sequence, widening bool) error {
	if seq == nil {
		return errors.New("catalog: nil sequence")
	}
	if err := seq.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	obj, ok := c.objects[id]
	if !ok || obj.Kind != KindEdited {
		return fmt.Errorf("catalog: edited id %d: %w", id, ErrNotFound)
	}
	if seq.BaseID != obj.Seq.BaseID {
		return fmt.Errorf("catalog: update would re-base %d from %d to %d", id, obj.Seq.BaseID, seq.BaseID)
	}
	for _, t := range seq.MergeTargets() {
		tgt, ok := c.objects[t]
		if !ok || tgt.Kind != KindBinary {
			return fmt.Errorf("catalog: merge target %d: %w", t, ErrNotFound)
		}
	}
	for _, t := range obj.Seq.MergeTargets() {
		if c.targetRefs[t]--; c.targetRefs[t] <= 0 {
			delete(c.targetRefs, t)
		}
	}
	for _, t := range seq.MergeTargets() {
		c.targetRefs[t]++
	}
	// Copy-on-write: concurrent readers hold *Object pointers from Get and
	// must keep seeing a consistent (old) version.
	updated := *obj
	updated.Seq = seq
	updated.Widening = widening
	c.objects[id] = &updated
	return nil
}

// ErrInUse is returned when deleting a binary image that edited images
// still depend on (as their base or as a Merge target).
var ErrInUse = errors.New("catalog: image is referenced by edited images")

// Delete removes an object. Edited images can always be deleted; binary
// images only when no edited image references them as base or Merge target
// (delete the dependents first).
func (c *Catalog) Delete(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	obj, ok := c.objects[id]
	if !ok {
		return fmt.Errorf("catalog: id %d: %w", id, ErrNotFound)
	}
	switch obj.Kind {
	case KindBinary:
		if len(c.children[id]) > 0 {
			return fmt.Errorf("catalog: id %d has %d edited versions: %w", id, len(c.children[id]), ErrInUse)
		}
		if c.targetRefs[id] > 0 {
			return fmt.Errorf("catalog: id %d is a merge target of %d sequences: %w", id, c.targetRefs[id], ErrInUse)
		}
		c.binaries = removeID(c.binaries, id)
		delete(c.children, id)
	case KindEdited:
		c.edited = removeID(c.edited, id)
		c.children[obj.Seq.BaseID] = removeID(c.children[obj.Seq.BaseID], id)
		for _, t := range obj.Seq.MergeTargets() {
			if c.targetRefs[t]--; c.targetRefs[t] <= 0 {
				delete(c.targetRefs, t)
			}
		}
	default:
		return fmt.Errorf("catalog: id %d: unknown kind %d", id, obj.Kind)
	}
	delete(c.objects, id)
	return nil
}

func removeID(ids []uint64, id uint64) []uint64 {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// HistogramOf returns a binary image's stored histogram. Together with
// DimsOf it makes *Catalog satisfy rules.TargetInfo, so the rule engine can
// resolve Merge targets straight from the catalog.
func (c *Catalog) HistogramOf(id uint64) (*histogram.Histogram, error) {
	obj, err := c.Binary(id)
	if err != nil {
		return nil, err
	}
	return obj.Hist, nil
}

// DimsOf returns a binary image's raster dimensions (see HistogramOf).
func (c *Catalog) DimsOf(id uint64) (int, int, error) {
	obj, err := c.Binary(id)
	if err != nil {
		return 0, 0, err
	}
	return obj.W, obj.H, nil
}

// AllIDs returns every object id sorted ascending, for deterministic dumps.
func (c *Catalog) AllIDs() []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]uint64, 0, len(c.objects))
	for id := range c.objects {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
