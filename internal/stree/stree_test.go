package stree

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// randItem builds a random box in [0,1]^dims; roughly half are degenerate
// point boxes, like binary histograms in core.
func randItem(rng *rand.Rand, id uint64, dims int) Item {
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := 0; d < dims; d++ {
		a := rng.Float64()
		if rng.Intn(2) == 0 {
			lo[d], hi[d] = a, a
		} else {
			b := a + rng.Float64()*(1-a)
			lo[d], hi[d] = a, b
		}
	}
	return Item{ID: id, Lo: lo, Hi: hi}
}

// slabClassify classifies against "box intersects [qmin,qmax] in dim" —
// the single-bin range query shape.
func slabClassify(dim int, qmin, qmax float64) func(lo, hi []float64) Overlap {
	return func(lo, hi []float64) Overlap {
		if lo[dim] > qmax || hi[dim] < qmin {
			return OverlapNone
		}
		if lo[dim] >= qmin && hi[dim] <= qmax {
			return OverlapFull
		}
		return OverlapPartial
	}
}

// collect runs a slab query over the snapshot and returns the sorted ids.
func collect(t *testing.T, s Snapshot, dim int, qmin, qmax float64) []uint64 {
	t.Helper()
	var ids []uint64
	var st VisitStats
	err := s.Visit(slabClassify(dim, qmin, qmax), func(it *Item, ov Overlap) error {
		ids = append(ids, it.ID)
		return nil
	}, &st)
	if err != nil {
		t.Fatalf("visit: %v", err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// brute answers the same query by linear scan over the item set.
func brute(items map[uint64]Item, dim int, qmin, qmax float64) []uint64 {
	var ids []uint64
	for id, it := range items {
		if it.Lo[dim] <= qmax && it.Hi[dim] >= qmin {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkInvariants walks the published tree verifying the union-box and
// fanout invariants.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	root := tr.root.Load()
	if root == nil {
		if tr.Len() != 0 {
			t.Fatalf("nil root with Len %d", tr.Len())
		}
		return
	}
	if got := root.count(); got != tr.Len() {
		t.Fatalf("tree holds %d items, Len says %d", got, tr.Len())
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			if len(n.items) == 0 {
				t.Fatalf("empty leaf survived")
			}
			if len(n.items) > tr.cap {
				t.Fatalf("leaf with %d items exceeds cap %d", len(n.items), tr.cap)
			}
			for _, it := range n.items {
				if !containsBox(n, it) {
					t.Fatalf("leaf box does not contain item %d", it.ID)
				}
			}
			return
		}
		if len(n.children) == 0 {
			t.Fatalf("empty inner node survived")
		}
		if len(n.children) > tr.cap {
			t.Fatalf("inner node with %d children exceeds cap %d", len(n.children), tr.cap)
		}
		for _, ch := range n.children {
			for d := 0; d < tr.dims; d++ {
				if ch.lo[d] < n.lo[d] || ch.hi[d] > n.hi[d] {
					t.Fatalf("child box escapes parent union at dim %d", d)
				}
			}
			walk(ch)
		}
	}
	walk(root)
}

func TestBulkMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dims, n = 8, 500
	items := make(map[uint64]Item, n)
	var list []Item
	for i := 0; i < n; i++ {
		it := randItem(rng, uint64(i+1), dims)
		items[it.ID] = it
		list = append(list, it)
	}
	tr := New(dims, 16)
	if err := tr.Bulk(list); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	s := tr.Snapshot()
	for q := 0; q < 200; q++ {
		dim := rng.Intn(dims)
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		got := collect(t, s, dim, a, b)
		want := brute(items, dim, a, b)
		if !sameIDs(got, want) {
			t.Fatalf("query dim %d [%v,%v]: got %d ids, want %d", dim, a, b, len(got), len(want))
		}
	}
}

// TestIncrementalEquivalence is the maintenance property: a tree built by
// interleaved inserts, updates and deletes answers every query exactly
// like one bulk-loaded from the final item set.
func TestIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dims = 6
	live := make(map[uint64]Item)
	tr := New(dims, 8)
	nextID := uint64(1)
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(live) == 0: // insert
			it := randItem(rng, nextID, dims)
			nextID++
			live[it.ID] = it
			if err := tr.Insert(it); err != nil {
				t.Fatal(err)
			}
		case op < 8: // update a random live id
			var id uint64
			for id = range live {
				break
			}
			it := randItem(rng, id, dims)
			live[id] = it
			if err := tr.Update(it); err != nil {
				t.Fatal(err)
			}
		default: // delete a random live id
			var id uint64
			for id = range live {
				break
			}
			delete(live, id)
			if !tr.Delete(id) {
				t.Fatalf("delete %d: not found", id)
			}
		}
	}
	checkInvariants(t, tr)
	if tr.Len() != len(live) {
		t.Fatalf("tree Len %d, live set %d", tr.Len(), len(live))
	}

	fresh := New(dims, 8)
	var list []Item
	for _, it := range live {
		list = append(list, it)
	}
	if err := fresh.Bulk(list); err != nil {
		t.Fatal(err)
	}
	si, sf := tr.Snapshot(), fresh.Snapshot()
	for q := 0; q < 300; q++ {
		dim := rng.Intn(dims)
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		got := collect(t, si, dim, a, b)
		want := collect(t, sf, dim, a, b)
		if !sameIDs(got, want) {
			t.Fatalf("incremental and rebuilt trees disagree on dim %d [%v,%v]", dim, a, b)
		}
		if bf := brute(live, dim, a, b); !sameIDs(got, bf) {
			t.Fatalf("incremental tree disagrees with brute force on dim %d [%v,%v]", dim, a, b)
		}
	}
}

func TestDeleteSemantics(t *testing.T) {
	tr := New(2, 4)
	if tr.Delete(42) {
		t.Fatal("delete on empty tree reported success")
	}
	items := []Item{
		{ID: 1, Lo: []float64{0.1, 0.1}, Hi: []float64{0.2, 0.2}},
		{ID: 2, Lo: []float64{0.5, 0.5}, Hi: []float64{0.6, 0.9}},
	}
	if err := tr.Bulk(items); err != nil {
		t.Fatal(err)
	}
	if !tr.Delete(1) || tr.Delete(1) {
		t.Fatal("delete of id 1 should succeed exactly once")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after delete, want 1", tr.Len())
	}
	if !tr.Delete(2) {
		t.Fatal("delete of id 2 failed")
	}
	if tr.root.Load() != nil {
		t.Fatal("emptied tree should have nil root")
	}
	// Reinsert into the emptied tree.
	if err := tr.Insert(items[0]); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, tr.Snapshot(), 0, 0, 1); !sameIDs(got, []uint64{1}) {
		t.Fatalf("reinsert lost the item: %v", got)
	}
}

func TestInsertReplacesExistingID(t *testing.T) {
	tr := New(1, 4)
	if err := tr.Insert(Item{ID: 5, Lo: []float64{0.1}, Hi: []float64{0.2}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Item{ID: 5, Lo: []float64{0.8}, Hi: []float64{0.9}}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replacing insert", tr.Len())
	}
	if got := collect(t, tr.Snapshot(), 0, 0, 0.5); len(got) != 0 {
		t.Fatalf("old box still matches: %v", got)
	}
	if got := collect(t, tr.Snapshot(), 0, 0.85, 0.85); !sameIDs(got, []uint64{5}) {
		t.Fatalf("new box does not match: %v", got)
	}
}

func TestNeedsRebuildThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New(4, 8)
	var list []Item
	for i := 0; i < 400; i++ {
		list = append(list, randItem(rng, uint64(i+1), 4))
	}
	if err := tr.Bulk(list); err != nil {
		t.Fatal(err)
	}
	if tr.NeedsRebuild() {
		t.Fatal("fresh bulk load should carry no debt")
	}
	for i := 0; i < 100; i++ {
		if !tr.Delete(uint64(i + 1)) {
			t.Fatalf("delete %d failed", i+1)
		}
	}
	if !tr.NeedsRebuild() {
		t.Fatal("100 deletes over 400 items should trip the rebuild threshold")
	}
	if err := tr.Bulk(nil); err != nil {
		t.Fatal(err)
	}
	if tr.NeedsRebuild() {
		t.Fatal("bulk load should reset the debt")
	}
}

func TestBestFirstFindsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const dims, n, k = 5, 300, 7
	var list []Item
	for i := 0; i < n; i++ {
		list = append(list, randItem(rng, uint64(i+1), dims))
	}
	tr := New(dims, 8)
	if err := tr.Bulk(list); err != nil {
		t.Fatal(err)
	}
	target := make([]float64, dims)
	for d := range target {
		target[d] = rng.Float64()
	}
	// L1 point-to-box lower bound.
	lb := func(lo, hi []float64) float64 {
		s := 0.0
		for d := range lo {
			switch {
			case target[d] < lo[d]:
				s += lo[d] - target[d]
			case target[d] > hi[d]:
				s += target[d] - hi[d]
			}
		}
		return s
	}
	// The "exact" distance of an item is its box lower bound (point boxes
	// make this the true L1 distance; interval boxes give a deterministic
	// stand-in that still respects lb ≤ exact).
	type scored struct {
		id uint64
		d  float64
	}
	var all []scored
	for _, it := range list {
		all = append(all, scored{it.ID, lb(it.Lo, it.Hi)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	want := all[:k]

	kept := make([]scored, 0, k)
	threshold := func() float64 {
		if len(kept) < k {
			return math.Inf(1)
		}
		return kept[len(kept)-1].d
	}
	var st VisitStats
	err := tr.Snapshot().BestFirst(lb, threshold, func(it *Item) error {
		d := lb(it.Lo, it.Hi)
		if d > threshold() {
			return nil
		}
		kept = append(kept, scored{it.ID, d})
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].d != kept[j].d {
				return kept[i].d < kept[j].d
			}
			return kept[i].id < kept[j].id
		})
		if len(kept) > k {
			kept = kept[:k]
		}
		return nil
	}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != k {
		t.Fatalf("kept %d results, want %d", len(kept), k)
	}
	for i := range want {
		if kept[i].id != want[i].id {
			t.Fatalf("result %d: got id %d (d=%v), want id %d (d=%v)", i, kept[i].id, kept[i].d, want[i].id, want[i].d)
		}
	}
	if st.NodesVisited == 0 || st.LeafChecks == 0 {
		t.Fatalf("best-first did no work: %+v", st)
	}
	if st.LeafChecks >= int64(n) {
		t.Fatalf("best-first checked every item (%d of %d): no pruning", st.LeafChecks, n)
	}
}

// TestSnapshotStableUnderMutation pins the lock-free read contract:
// concurrent readers over captured snapshots keep seeing exactly the item
// set published at capture time while a writer churns the tree.
func TestSnapshotStableUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const dims = 4
	tr := New(dims, 8)
	var list []Item
	for i := 0; i < 200; i++ {
		list = append(list, randItem(rng, uint64(i+1), dims))
	}
	if err := tr.Bulk(list); err != nil {
		t.Fatal(err)
	}
	s := tr.Snapshot()
	wantLen := s.Len()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var st VisitStats
				n := 0
				err := s.Visit(func(lo, hi []float64) Overlap { return OverlapPartial },
					func(it *Item, ov Overlap) error { n++; return nil }, &st)
				if err != nil || n != wantLen {
					t.Errorf("snapshot drifted: n=%d want %d err=%v", n, wantLen, err)
					return
				}
			}
		}()
	}
	wrng := rand.New(rand.NewSource(29))
	for i := 0; i < 500; i++ {
		id := uint64(wrng.Intn(400) + 1)
		if wrng.Intn(2) == 0 {
			if err := tr.Insert(randItem(wrng, id, dims)); err != nil {
				t.Error(err)
				break
			}
		} else {
			tr.Delete(id)
		}
	}
	close(stop)
	wg.Wait()
	checkInvariants(t, tr)
}

func TestDimsValidation(t *testing.T) {
	tr := New(3, 4)
	if err := tr.Insert(Item{ID: 1, Lo: []float64{0}, Hi: []float64{1}}); err == nil {
		t.Fatal("wrong-dims insert should fail")
	}
	if err := tr.Insert(Item{ID: 1, Lo: []float64{0, 0, 0.5}, Hi: []float64{1, 1, 0.4}}); err == nil {
		t.Fatal("inverted box should fail")
	}
	if err := tr.Bulk([]Item{{ID: 1, Lo: []float64{0, 0}, Hi: []float64{1, 1}}}); err == nil {
		t.Fatal("wrong-dims bulk should fail")
	}
}
