// Package stree implements the signature tree (S-tree) behind the
// database's sublinear retrieval mode: a balanced, bulk-loaded tree over
// per-candidate histogram bound boxes, in the spirit of Le & Van's S-tree
// over binary color signatures. Every candidate contributes one
// axis-aligned box in percentage space — an edited image's per-bin
// [BOUNDmin/total, BOUNDmax/total] envelope, a binary image's exact
// normalized histogram as a degenerate point box — and every inner node
// holds the coordinate-wise union of its subtree's boxes. A range query
// descends only into nodes whose union box intersects the query region,
// admits whole subtrees whose union box is contained in it, and a nearest-
// neighbor search runs best-first branch-and-bound over node boxes.
//
// Concurrency contract: reads are lock-free. The tree publishes an
// immutable root through an atomic pointer; Snapshot captures it once and
// every traversal runs against that frozen version. Mutations (Bulk,
// Insert, Update, Delete, Rebuild) copy the touched root-to-leaf path,
// never modify a published node in place, and must be serialized by the
// caller — in core they all run under the database write lock. This shape
// is what lets a query instantiate candidates mid-traversal (which takes
// database locks) without any lock ordering against writers.
package stree

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Item is one indexed candidate: its id, its bound box in percentage space
// (Lo[d] ≤ Hi[d], both inclusive), and an opaque payload the caller uses
// for exact leaf decisions (core stores the integer bounds vector there).
type Item struct {
	ID     uint64
	Lo, Hi []float64
	Data   any
}

// node is one immutable tree node. Exactly one of children/items is
// non-nil; lo/hi is the coordinate-wise union of everything beneath.
// Nodes are never mutated after being linked under a published root.
type node struct {
	lo, hi   []float64
	children []*node
	items    []*Item
}

func (n *node) leaf() bool { return n.children == nil }

// count returns the number of items in the subtree.
func (n *node) count() int {
	if n.leaf() {
		return len(n.items)
	}
	c := 0
	for _, ch := range n.children {
		c += ch.count()
	}
	return c
}

// Tree is the mutable handle: an atomic root plus writer-side bookkeeping.
type Tree struct {
	dims int
	cap  int // max children per inner node and items per leaf

	root atomic.Pointer[node]
	live atomic.Int64 // published item count
	// dirty counts structure-degrading mutations (deletes and updates)
	// since the last bulk load; NeedsRebuild trips once the debt is a
	// quarter of the live set. Inserts keep the tree correct but only
	// enlarge boxes, deletes leave underfull leaves — both erode pruning
	// quality without ever affecting correctness, which is why rebuilds
	// can be lazy.
	dirty atomic.Int64

	// byID locates each live item's box for containment-guided deletes and
	// is touched only by (caller-serialized) mutators.
	byID map[uint64]*Item
}

// New returns an empty tree over dims-dimensional boxes. cap is the node
// capacity (children per inner node, items per leaf); values below 4 are
// raised to 4.
func New(dims, cap int) *Tree {
	if cap < 4 {
		cap = 4
	}
	return &Tree{dims: dims, cap: cap, byID: make(map[uint64]*Item)}
}

// Dims returns the box dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Len returns the number of live items. Safe to call concurrently with
// mutations (it reads an atomic).
func (t *Tree) Len() int { return int(t.live.Load()) }

// NeedsRebuild reports whether enough structural debt has accumulated that
// the next bulk load is worth paying for. Purely advisory: a tree past the
// threshold still answers every query correctly, just with weaker pruning.
func (t *Tree) NeedsRebuild() bool {
	d := t.dirty.Load()
	n := t.live.Load()
	return d >= 64 && d*4 >= n
}

// checkItem validates an item's box against the tree's dimensionality.
func (t *Tree) checkItem(it Item) error {
	if len(it.Lo) != t.dims || len(it.Hi) != t.dims {
		return fmt.Errorf("stree: item %d box has %d/%d dims, tree has %d", it.ID, len(it.Lo), len(it.Hi), t.dims)
	}
	for d := 0; d < t.dims; d++ {
		if it.Lo[d] > it.Hi[d] {
			return fmt.Errorf("stree: item %d dim %d has lo %v > hi %v", it.ID, d, it.Lo[d], it.Hi[d])
		}
	}
	return nil
}

// Bulk replaces the tree's contents with an STR-style bottom-balanced
// build over items, resetting the structural debt. Duplicate ids keep the
// last occurrence. The previous version stays valid for snapshots taken
// before the swap.
func (t *Tree) Bulk(items []Item) error {
	byID := make(map[uint64]*Item, len(items))
	for i := range items {
		if err := t.checkItem(items[i]); err != nil {
			return err
		}
		it := items[i] // copy: the tree owns its items
		byID[it.ID] = &it
	}
	ptrs := make([]*Item, 0, len(byID))
	for _, it := range byID {
		ptrs = append(ptrs, it)
	}
	// Deterministic build regardless of map order.
	sort.Slice(ptrs, func(i, j int) bool { return ptrs[i].ID < ptrs[j].ID })
	var root *node
	if len(ptrs) > 0 {
		root = build(ptrs, t.dims, t.cap)
	}
	t.byID = byID
	t.root.Store(root)
	t.live.Store(int64(len(ptrs)))
	t.dirty.Store(0)
	return nil
}

// build recursively packs items into a balanced tree: sort by box center
// along the widest-spread dimension, cut into up to cap contiguous runs of
// near-equal size, recurse. Ties break by id, so the build is a pure
// function of the item set.
func build(items []*Item, dims, cap int) *node {
	if len(items) <= cap {
		n := &node{items: append([]*Item(nil), items...)}
		n.computeBoxFromItems(dims)
		return n
	}
	dim := widestDim(items, dims)
	sorted := append([]*Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		ci := sorted[i].Lo[dim] + sorted[i].Hi[dim]
		cj := sorted[j].Lo[dim] + sorted[j].Hi[dim]
		if ci != cj {
			return ci < cj
		}
		return sorted[i].ID < sorted[j].ID
	})
	groups := cap
	if groups > len(sorted) {
		groups = len(sorted)
	}
	n := &node{children: make([]*node, 0, groups)}
	for g := 0; g < groups; g++ {
		start := g * len(sorted) / groups
		end := (g + 1) * len(sorted) / groups
		if start == end {
			continue
		}
		n.children = append(n.children, build(sorted[start:end], dims, cap))
	}
	n.computeBoxFromChildren(dims)
	return n
}

// widestDim picks the dimension with the largest spread of box centers.
func widestDim(items []*Item, dims int) int {
	best, bestSpread := 0, -1.0
	for d := 0; d < dims; d++ {
		lo, hi := items[0].Lo[d]+items[0].Hi[d], items[0].Lo[d]+items[0].Hi[d]
		for _, it := range items[1:] {
			c := it.Lo[d] + it.Hi[d]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if spread := hi - lo; spread > bestSpread {
			best, bestSpread = d, spread
		}
	}
	return best
}

func (n *node) computeBoxFromItems(dims int) {
	n.lo, n.hi = make([]float64, dims), make([]float64, dims)
	for d := 0; d < dims; d++ {
		n.lo[d], n.hi[d] = n.items[0].Lo[d], n.items[0].Hi[d]
		for _, it := range n.items[1:] {
			if it.Lo[d] < n.lo[d] {
				n.lo[d] = it.Lo[d]
			}
			if it.Hi[d] > n.hi[d] {
				n.hi[d] = it.Hi[d]
			}
		}
	}
}

func (n *node) computeBoxFromChildren(dims int) {
	n.lo, n.hi = make([]float64, dims), make([]float64, dims)
	for d := 0; d < dims; d++ {
		n.lo[d], n.hi[d] = n.children[0].lo[d], n.children[0].hi[d]
		for _, ch := range n.children[1:] {
			if ch.lo[d] < n.lo[d] {
				n.lo[d] = ch.lo[d]
			}
			if ch.hi[d] > n.hi[d] {
				n.hi[d] = ch.hi[d]
			}
		}
	}
}

// Insert adds one item, path-copying from root to leaf and splitting on
// overflow. An id already present is replaced (same as Update). Caller
// serializes mutations.
func (t *Tree) Insert(it Item) error {
	if err := t.checkItem(it); err != nil {
		return err
	}
	if _, ok := t.byID[it.ID]; ok {
		if !t.delete(it.ID) {
			return fmt.Errorf("stree: id %d in byID but not in tree", it.ID)
		}
	}
	stored := it // copy
	t.byID[it.ID] = &stored
	root := t.root.Load()
	if root == nil {
		leafN := &node{items: []*Item{&stored}}
		leafN.computeBoxFromItems(t.dims)
		t.root.Store(leafN)
		t.live.Add(1)
		return nil
	}
	n1, n2 := t.insertInto(root, &stored)
	if n2 != nil {
		root = &node{children: []*node{n1, n2}}
		root.computeBoxFromChildren(t.dims)
	} else {
		root = n1
	}
	t.root.Store(root)
	t.live.Add(1)
	return nil
}

// insertInto returns the copied replacement for n after adding it, plus a
// second node when n had to split.
func (t *Tree) insertInto(n *node, it *Item) (*node, *node) {
	if n.leaf() {
		items := make([]*Item, 0, len(n.items)+1)
		items = append(items, n.items...)
		items = append(items, it)
		if len(items) <= t.cap {
			nn := &node{items: items}
			nn.computeBoxFromItems(t.dims)
			return nn, nil
		}
		left, right := splitItems(items, t.dims)
		ln := &node{items: left}
		ln.computeBoxFromItems(t.dims)
		rn := &node{items: right}
		rn.computeBoxFromItems(t.dims)
		return ln, rn
	}
	best := chooseSubtree(n.children, it)
	c1, c2 := t.insertInto(n.children[best], it)
	children := make([]*node, 0, len(n.children)+1)
	children = append(children, n.children...)
	children[best] = c1
	if c2 != nil {
		children = append(children, c2)
	}
	if len(children) <= t.cap {
		nn := &node{children: children}
		nn.computeBoxFromChildren(t.dims)
		return nn, nil
	}
	left, right := splitChildren(children, t.dims)
	ln := &node{children: left}
	ln.computeBoxFromChildren(t.dims)
	rn := &node{children: right}
	rn.computeBoxFromChildren(t.dims)
	return ln, rn
}

// chooseSubtree picks the child needing the least margin enlargement to
// absorb the item (margin, not volume: boxes in 64-dimensional percentage
// space have degenerate volumes). Ties go to the smaller current margin,
// then to the first child — all deterministic.
func chooseSubtree(children []*node, it *Item) int {
	best, bestEnl, bestMargin := 0, 0.0, 0.0
	for i, ch := range children {
		enl, margin := 0.0, 0.0
		for d := range ch.lo {
			lo, hi := ch.lo[d], ch.hi[d]
			margin += hi - lo
			if it.Lo[d] < lo {
				enl += lo - it.Lo[d]
			}
			if it.Hi[d] > hi {
				enl += it.Hi[d] - hi
			}
		}
		if i == 0 || enl < bestEnl || (enl == bestEnl && margin < bestMargin) {
			best, bestEnl, bestMargin = i, enl, margin
		}
	}
	return best
}

// splitItems splits an overflowing leaf's items at the median of the
// widest-spread center dimension.
func splitItems(items []*Item, dims int) ([]*Item, []*Item) {
	dim := widestDim(items, dims)
	sorted := append([]*Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		ci := sorted[i].Lo[dim] + sorted[i].Hi[dim]
		cj := sorted[j].Lo[dim] + sorted[j].Hi[dim]
		if ci != cj {
			return ci < cj
		}
		return sorted[i].ID < sorted[j].ID
	})
	mid := len(sorted) / 2
	return sorted[:mid:mid], sorted[mid:]
}

// splitChildren does the same for an overflowing inner node, on child box
// centers.
func splitChildren(children []*node, dims int) ([]*node, []*node) {
	dim := 0
	bestSpread := -1.0
	for d := 0; d < dims; d++ {
		lo, hi := children[0].lo[d]+children[0].hi[d], children[0].lo[d]+children[0].hi[d]
		for _, ch := range children[1:] {
			c := ch.lo[d] + ch.hi[d]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if spread := hi - lo; spread > bestSpread {
			dim, bestSpread = d, spread
		}
	}
	sorted := append([]*node(nil), children...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].lo[dim]+sorted[i].hi[dim] < sorted[j].lo[dim]+sorted[j].hi[dim]
	})
	mid := len(sorted) / 2
	return sorted[:mid:mid], sorted[mid:]
}

// Update replaces an item's box (same id), counting as structural debt.
// Caller serializes mutations.
func (t *Tree) Update(it Item) error {
	if err := t.Insert(it); err != nil {
		return err
	}
	t.dirty.Add(1)
	return nil
}

// Delete removes an item by id, reporting whether it was present. The
// delete path is copied and its union boxes recomputed tight; leaves are
// never merged (that is what rebuilds are for). Caller serializes
// mutations.
func (t *Tree) Delete(id uint64) bool {
	if !t.delete(id) {
		return false
	}
	t.dirty.Add(1)
	return true
}

// delete is Delete without the debt accounting (Insert-replace uses it).
func (t *Tree) delete(id uint64) bool {
	it, ok := t.byID[id]
	if !ok {
		return false
	}
	root := t.root.Load()
	if root == nil {
		return false
	}
	nn, removed := t.removeFrom(root, id, it)
	if !removed {
		return false
	}
	delete(t.byID, id)
	t.root.Store(nn) // nn may be nil (tree emptied)
	t.live.Add(-1)
	return true
}

// removeFrom returns the copied replacement for n without the item (nil if
// n emptied) and whether the item was found. Descent is containment-
// guided: only children whose box contains the item's box can hold it.
func (t *Tree) removeFrom(n *node, id uint64, it *Item) (*node, bool) {
	if n.leaf() {
		idx := -1
		for i, li := range n.items {
			if li.ID == id {
				idx = i
				break
			}
		}
		if idx < 0 {
			return n, false
		}
		if len(n.items) == 1 {
			return nil, true
		}
		items := make([]*Item, 0, len(n.items)-1)
		items = append(items, n.items[:idx]...)
		items = append(items, n.items[idx+1:]...)
		nn := &node{items: items}
		nn.computeBoxFromItems(t.dims)
		return nn, true
	}
	for i, ch := range n.children {
		if !containsBox(ch, it) {
			continue
		}
		cn, removed := t.removeFrom(ch, id, it)
		if !removed {
			continue
		}
		var children []*node
		if cn == nil {
			if len(n.children) == 1 {
				return nil, true
			}
			children = make([]*node, 0, len(n.children)-1)
			children = append(children, n.children[:i]...)
			children = append(children, n.children[i+1:]...)
		} else {
			children = make([]*node, len(n.children))
			copy(children, n.children)
			children[i] = cn
		}
		nn := &node{children: children}
		nn.computeBoxFromChildren(t.dims)
		return nn, true
	}
	return n, false
}

// containsBox reports whether the node's union box contains the item's box
// — the invariant every ancestor of a live item maintains.
func containsBox(n *node, it *Item) bool {
	for d := range n.lo {
		if it.Lo[d] < n.lo[d] || it.Hi[d] > n.hi[d] {
			return false
		}
	}
	return true
}
