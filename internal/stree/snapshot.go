package stree

import "container/heap"

// Snapshot is a frozen, immutable version of the tree. Taking one is a
// single atomic load; traversals over it are wait-free with respect to
// writers and always see the exact item set that was published at capture
// time (objects deleted afterwards still appear — the read-committed
// contract core documents for the indexed mode).
type Snapshot struct {
	root *node
}

// Snapshot captures the current published version.
func (t *Tree) Snapshot() Snapshot { return Snapshot{root: t.root.Load()} }

// Len returns the snapshot's item count (walks the version; test helper).
func (s Snapshot) Len() int {
	if s.root == nil {
		return 0
	}
	return s.root.count()
}

// Overlap classifies a box against a query region.
type Overlap uint8

const (
	// OverlapNone: the box cannot intersect the region — prune.
	OverlapNone Overlap = iota
	// OverlapPartial: the box intersects but is not contained — descend
	// (nodes) or decide exactly (items).
	OverlapPartial
	// OverlapFull: the box is contained in the region — admit the whole
	// subtree without further checks.
	OverlapFull
)

// VisitStats counts the work one traversal did.
type VisitStats struct {
	// NodesVisited is how many node boxes were classified.
	NodesVisited int64
	// LeafChecks is how many item boxes were classified individually.
	LeafChecks int64
	// SubtreeAdmitted is how many items were admitted through a fully
	// contained ancestor, without an individual check.
	SubtreeAdmitted int64
}

// Visit walks the snapshot guided by classify over union boxes: None
// subtrees are pruned, Full subtrees admit every item beneath without
// per-item work, Partial subtrees descend. In Partial leaves each item box
// is classified itself; non-None items reach onItem with their verdict
// (OverlapFull = proven in by geometry alone, OverlapPartial = the caller
// must decide exactly). Items under a Full node reach onItem with
// OverlapFull. classify must be conservative: it may return Partial
// instead of None/Full, never the reverse. A non-nil error from onItem
// aborts the walk.
func (s Snapshot) Visit(classify func(lo, hi []float64) Overlap, onItem func(it *Item, ov Overlap) error, st *VisitStats) error {
	if s.root == nil {
		return nil
	}
	return s.visit(s.root, classify, onItem, st)
}

func (s Snapshot) visit(n *node, classify func(lo, hi []float64) Overlap, onItem func(it *Item, ov Overlap) error, st *VisitStats) error {
	st.NodesVisited++
	switch classify(n.lo, n.hi) {
	case OverlapNone:
		return nil
	case OverlapFull:
		return s.admitAll(n, onItem, st)
	case OverlapPartial:
		// fall through to descend
	default:
		// classify is caller code; treat anything unexpected as Partial,
		// the conservative verdict.
	}
	if n.leaf() {
		for _, it := range n.items {
			st.LeafChecks++
			ov := classify(it.Lo, it.Hi)
			if ov == OverlapNone {
				continue
			}
			if err := onItem(it, ov); err != nil {
				return err
			}
		}
		return nil
	}
	for _, ch := range n.children {
		if err := s.visit(ch, classify, onItem, st); err != nil {
			return err
		}
	}
	return nil
}

// admitAll delivers every item under n as OverlapFull.
func (s Snapshot) admitAll(n *node, onItem func(it *Item, ov Overlap) error, st *VisitStats) error {
	if n.leaf() {
		for _, it := range n.items {
			st.SubtreeAdmitted++
			if err := onItem(it, OverlapFull); err != nil {
				return err
			}
		}
		return nil
	}
	for _, ch := range n.children {
		if err := s.admitAll(ch, onItem, st); err != nil {
			return err
		}
	}
	return nil
}

// bfEntry is one prioritized subtree in a best-first search. seq breaks
// lower-bound ties by insertion order, making the traversal fully
// deterministic.
type bfEntry struct {
	lb   float64
	seq  int
	node *node
}

type bfHeap []bfEntry

func (h bfHeap) Len() int { return len(h) }
func (h bfHeap) Less(i, j int) bool {
	if h[i].lb != h[j].lb {
		return h[i].lb < h[j].lb
	}
	return h[i].seq < h[j].seq
}
func (h bfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bfHeap) Push(x interface{}) { *h = append(*h, x.(bfEntry)) }
func (h *bfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// BestFirst runs branch-and-bound over the snapshot: subtrees are expanded
// in ascending order of nodeLB (a lower bound on any item's distance
// beneath the node — it must be monotone: a subset box never has a smaller
// bound). Expansion stops as soon as the best remaining subtree's bound
// exceeds threshold(), which may tighten as onItem records exact
// distances; a stale (larger) threshold read only delays the stop, never
// skips a qualifying item. Items in reached leaves are passed to onItem,
// which does its own item-level bounding and scoring. A non-nil error
// aborts the search.
func (s Snapshot) BestFirst(nodeLB func(lo, hi []float64) float64, threshold func() float64, onItem func(it *Item) error, st *VisitStats) error {
	if s.root == nil {
		return nil
	}
	seq := 0
	h := &bfHeap{}
	heap.Push(h, bfEntry{lb: nodeLB(s.root.lo, s.root.hi), seq: seq, node: s.root})
	for h.Len() > 0 {
		e := heap.Pop(h).(bfEntry)
		st.NodesVisited++
		if e.lb > threshold() {
			// The heap is ordered by lb: everything still queued is at
			// least this far away, so nothing left can beat the k-th best.
			return nil
		}
		if e.node.leaf() {
			for _, it := range e.node.items {
				st.LeafChecks++
				if err := onItem(it); err != nil {
					return err
				}
			}
			continue
		}
		for _, ch := range e.node.children {
			lb := nodeLB(ch.lo, ch.hi)
			if lb > threshold() {
				continue // already provably outside; skip the queue
			}
			seq++
			heap.Push(h, bfEntry{lb: lb, seq: seq, node: ch})
		}
	}
	return nil
}
