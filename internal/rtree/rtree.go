// Package rtree implements a Guttman R-tree over d-dimensional float
// rectangles — the multidimensional access method the paper cites ([13]
// Guttman 1984; [3] Brown & Gruenwald 1998) for organizing histogram
// signatures. The database uses it to index binary-image histograms so
// range probes and nearest-neighbor searches need not scan every signature.
//
// Supported operations: Insert, Delete, SearchIntersect, and best-first
// NearestK (Hjaltason–Samet). Splits use Guttman's quadratic algorithm.
package rtree

import (
	"container/heap"
	"fmt"
	"math"
)

// Rect is an axis-aligned d-dimensional rectangle (Min[i] ≤ Max[i]).
type Rect struct {
	Min, Max []float64
}

// Point returns the degenerate rectangle covering exactly p.
func Point(p []float64) Rect {
	min := make([]float64, len(p))
	max := make([]float64, len(p))
	copy(min, p)
	copy(max, p)
	return Rect{Min: min, Max: max}
}

// NewRect validates and returns a rectangle.
func NewRect(min, max []float64) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("rtree: min/max dimensionality %d != %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("rtree: dim %d: min %v > max %v", i, min[i], max[i])
		}
	}
	return Rect{Min: min, Max: max}, nil
}

func (r Rect) dim() int { return len(r.Min) }

// Intersects reports whether two rectangles overlap (boundaries included).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if r.Min[i] > o.Max[i] || o.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether o lies entirely inside r.
func (r Rect) Contains(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// area returns the d-dimensional volume.
func (r Rect) area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// enlarged returns the bounding rectangle of r and o.
func (r Rect) enlarged(o Rect) Rect {
	min := make([]float64, len(r.Min))
	max := make([]float64, len(r.Max))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], o.Min[i])
		max[i] = math.Max(r.Max[i], o.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// enlargement returns the volume increase of r needed to include o.
func (r Rect) enlargement(o Rect) float64 {
	return r.enlarged(o).area() - r.area()
}

// minDistSq returns the squared minimum Euclidean distance from point p to
// the rectangle (0 if p is inside), the MINDIST of the NN literature.
func (r Rect) minDistSq(p []float64) float64 {
	d := 0.0
	for i := range p {
		switch {
		case p[i] < r.Min[i]:
			v := r.Min[i] - p[i]
			d += v * v
		case p[i] > r.Max[i]:
			v := p[i] - r.Max[i]
			d += v * v
		}
	}
	return d
}

type entry struct {
	rect  Rect
	id    uint64 // leaf entries only
	child *node  // internal entries only
}

type node struct {
	leaf    bool
	entries []entry
	parent  *node
}

// Tree is a Guttman R-tree. The zero value is not usable; construct with
// New. Not safe for concurrent mutation.
type Tree struct {
	dim        int
	minEntries int
	maxEntries int
	root       *node
	size       int
}

// New returns an empty R-tree over dim-dimensional data with the given node
// capacity (maxEntries; minEntries = maxEntries/2). It panics on dim < 1 or
// maxEntries < 2 — construction parameters are programmer errors.
func New(dim, maxEntries int) *Tree {
	if dim < 1 {
		panic(fmt.Sprintf("rtree: dimension %d < 1", dim))
	}
	if maxEntries < 2 {
		panic(fmt.Sprintf("rtree: maxEntries %d < 2", maxEntries))
	}
	minE := maxEntries / 2
	if minE < 1 {
		minE = 1
	}
	return &Tree{
		dim:        dim,
		minEntries: minE,
		maxEntries: maxEntries,
		root:       &node{leaf: true},
	}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Insert adds a rectangle with an id. Duplicate ids are allowed; Delete
// removes by (rect, id) pair.
func (t *Tree) Insert(r Rect, id uint64) error {
	if r.dim() != t.dim {
		return fmt.Errorf("rtree: insert dim %d into %d-d tree", r.dim(), t.dim)
	}
	leaf := t.chooseLeaf(t.root, r)
	leaf.entries = append(leaf.entries, entry{rect: r, id: id})
	t.size++
	t.adjustUp(leaf)
	return nil
}

// InsertPoint adds the degenerate rectangle at p.
func (t *Tree) InsertPoint(p []float64, id uint64) error {
	return t.Insert(Point(p), id)
}

func (t *Tree) chooseLeaf(n *node, r Rect) *node {
	for !n.leaf {
		best := -1
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i := range n.entries {
			enl := n.entries[i].rect.enlargement(r)
			area := n.entries[i].rect.area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[best].child
	}
	return n
}

// adjustUp propagates splits and bounding-rect updates to the root.
func (t *Tree) adjustUp(n *node) {
	for {
		var sibling *node
		if len(n.entries) > t.maxEntries {
			sibling = t.splitNode(n)
		}
		if n.parent == nil {
			if sibling != nil {
				// Root split: grow the tree.
				newRoot := &node{leaf: false}
				newRoot.entries = []entry{
					{rect: boundingRect(n), child: n},
					{rect: boundingRect(sibling), child: sibling},
				}
				n.parent = newRoot
				sibling.parent = newRoot
				t.root = newRoot
			}
			return
		}
		parent := n.parent
		// Refresh n's bounding rect in its parent.
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries[i].rect = boundingRect(n)
				break
			}
		}
		if sibling != nil {
			sibling.parent = parent
			parent.entries = append(parent.entries, entry{rect: boundingRect(sibling), child: sibling})
		}
		n = parent
	}
}

func boundingRect(n *node) Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.enlarged(e.rect)
	}
	return r
}

// splitNode performs Guttman's quadratic split, leaving one group in n and
// returning the new sibling.
func (t *Tree) splitNode(n *node) *node {
	entries := n.entries
	// Pick seeds: the pair wasting the most area if grouped.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.enlarged(entries[j].rect).area() -
				entries[i].rect.area() - entries[j].rect.area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	groupA := []entry{entries[seedA]}
	groupB := []entry{entries[seedB]}
	rectA := entries[seedA].rect
	rectB := entries[seedB].rect
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take everything to reach minEntries, do it.
		if len(groupA)+len(rest) == t.minEntries {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				rectA = rectA.enlarged(e.rect)
			}
			rest = nil
			break
		}
		if len(groupB)+len(rest) == t.minEntries {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				rectB = rectB.enlarged(e.rect)
			}
			rest = nil
			break
		}
		// PickNext: entry with the greatest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			dA := rectA.enlargement(e.rect)
			dB := rectB.enlargement(e.rect)
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		dA := rectA.enlargement(e.rect)
		dB := rectB.enlargement(e.rect)
		if dA < dB || (dA == dB && rectA.area() < rectB.area()) ||
			(dA == dB && rectA.area() == rectB.area() && len(groupA) <= len(groupB)) {
			groupA = append(groupA, e)
			rectA = rectA.enlarged(e.rect)
		} else {
			groupB = append(groupB, e)
			rectB = rectB.enlarged(e.rect)
		}
	}
	n.entries = groupA
	sibling := &node{leaf: n.leaf, entries: groupB}
	if !n.leaf {
		for i := range sibling.entries {
			sibling.entries[i].child.parent = sibling
		}
	}
	return sibling
}

// SearchIntersect returns the ids of all entries whose rectangles intersect
// r, in unspecified order.
func (t *Tree) SearchIntersect(r Rect) ([]uint64, error) {
	if r.dim() != t.dim {
		return nil, fmt.Errorf("rtree: search dim %d in %d-d tree", r.dim(), t.dim)
	}
	var out []uint64
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if !e.rect.Intersects(r) {
				continue
			}
			if n.leaf {
				out = append(out, e.id)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return out, nil
}

// Neighbor is one NearestK result.
type Neighbor struct {
	ID uint64
	// Dist is the Euclidean distance from the query point to the entry's
	// rectangle (0 if the point is inside it).
	Dist float64
}

// NearestK returns the k entries nearest to point p in ascending distance,
// using best-first search over MINDIST. Fewer than k results are returned
// if the tree is smaller than k.
func (t *Tree) NearestK(p []float64, k int) ([]Neighbor, error) {
	if len(p) != t.dim {
		return nil, fmt.Errorf("rtree: query dim %d in %d-d tree", len(p), t.dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("rtree: k = %d must be positive", k)
	}
	pq := &nnQueue{}
	heap.Init(pq)
	heap.Push(pq, nnItem{node: t.root, distSq: 0})
	var out []Neighbor
	for pq.Len() > 0 && len(out) < k {
		item := heap.Pop(pq).(nnItem)
		if item.node == nil {
			out = append(out, Neighbor{ID: item.id, Dist: math.Sqrt(item.distSq)})
			continue
		}
		for _, e := range item.node.entries {
			child := nnItem{distSq: e.rect.minDistSq(p)}
			if item.node.leaf {
				child.id = e.id
			} else {
				child.node = e.child
			}
			heap.Push(pq, child)
		}
	}
	return out, nil
}

type nnItem struct {
	node   *node // nil for a leaf entry
	id     uint64
	distSq float64
}

type nnQueue []nnItem

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].distSq < q[j].distSq }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// Delete removes one entry matching (r, id) exactly. It reports whether an
// entry was removed. Underfull nodes are condensed per Guttman: their
// surviving entries are reinserted.
func (t *Tree) Delete(r Rect, id uint64) (bool, error) {
	if r.dim() != t.dim {
		return false, fmt.Errorf("rtree: delete dim %d in %d-d tree", r.dim(), t.dim)
	}
	leaf, idx := t.findLeaf(t.root, r, id)
	if leaf == nil {
		return false, nil
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root if it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	return true, nil
}

func (t *Tree) findLeaf(n *node, r Rect, id uint64) (*node, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.id == id && rectsEqual(e.rect, r) {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.Contains(r) || e.rect.Intersects(r) {
			if leaf, i := t.findLeaf(e.child, r, id); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, 0
}

func rectsEqual(a, b Rect) bool {
	for i := range a.Min {
		if a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			return false
		}
	}
	return true
}

// condense removes underfull nodes up the tree and reinserts their entries.
func (t *Tree) condense(n *node) {
	var orphans []entry
	for n.parent != nil {
		parent := n.parent
		if len(n.entries) < t.minEntries {
			// Detach n from its parent and queue its entries.
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
					break
				}
			}
			orphans = append(orphans, collectLeafEntries(n)...)
		} else {
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries[i].rect = boundingRect(n)
					break
				}
			}
		}
		n = parent
	}
	for _, e := range orphans {
		t.size-- // Insert will re-increment
		if err := t.Insert(e.rect, e.id); err != nil {
			// Cannot happen: the entry came from this tree.
			panic(err)
		}
	}
}

func collectLeafEntries(n *node) []entry {
	if n.leaf {
		return n.entries
	}
	var out []entry
	for _, e := range n.entries {
		out = append(out, collectLeafEntries(e.child)...)
	}
	return out
}

// checkInvariants validates structural invariants (bounding rectangles
// contain children, entry counts within limits except the root, leaves at
// uniform depth). Exposed to tests via export_test.go.
func (t *Tree) checkInvariants() error {
	leafDepth := -1
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n != t.root {
			if len(n.entries) < t.minEntries || len(n.entries) > t.maxEntries {
				return fmt.Errorf("node with %d entries outside [%d,%d]", len(n.entries), t.minEntries, t.maxEntries)
			}
		} else if len(n.entries) > t.maxEntries {
			return fmt.Errorf("root with %d entries exceeds max %d", len(n.entries), t.maxEntries)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		for _, e := range n.entries {
			if e.child.parent != n {
				return fmt.Errorf("broken parent pointer")
			}
			if !rectsEqual(e.rect, boundingRect(e.child)) {
				return fmt.Errorf("stale bounding rect")
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if t.size == 0 {
		return nil
	}
	return walk(t.root, 0)
}
