package rtree

// CheckInvariants exposes the structural validator to tests.
func (t *Tree) CheckInvariants() error { return t.checkInvariants() }
