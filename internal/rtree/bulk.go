package rtree

import (
	"fmt"
	"math"
	"sort"
)

// BulkItem is one entry for bulk loading.
type BulkItem struct {
	Rect Rect
	ID   uint64
}

// BulkLoad builds a packed tree from items using Sort-Tile-Recursive
// (Leutenegger et al.): items are sorted and tiled into full leaves along
// successive dimensions, then the process repeats on the parent level. The
// result answers queries identically to an incrementally built tree but
// with near-100% node occupancy, which is why the database uses it when
// rebuilding the signature index from a reopened catalog.
func BulkLoad(dim, maxEntries int, items []BulkItem) (*Tree, error) {
	t := New(dim, maxEntries)
	if len(items) == 0 {
		return t, nil
	}
	for i, it := range items {
		if it.Rect.dim() != dim {
			return nil, fmt.Errorf("rtree: bulk item %d has dimension %d, want %d", i, it.Rect.dim(), dim)
		}
	}
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: it.Rect, id: it.ID}
	}
	leaves := packLevel(entries, maxEntries, dim, true)
	t.size = len(items)
	// Build upper levels until a single root remains.
	level := leaves
	for len(level) > 1 {
		parentEntries := make([]entry, len(level))
		for i, n := range level {
			parentEntries[i] = entry{rect: boundingRect(n), child: n}
		}
		level = packLevel(parentEntries, maxEntries, dim, false)
	}
	t.root = level[0]
	fixParents(t.root)
	return t, nil
}

// packLevel tiles entries into nodes of up to maxEntries using STR: sort by
// the center of dimension 0, slice into vertical runs, sort each run by
// dimension 1, and so on, finally cutting full nodes.
func packLevel(entries []entry, maxEntries, dim int, leaf bool) []*node {
	nodeCount := (len(entries) + maxEntries - 1) / maxEntries
	groups := [][]entry{entries}
	for d := 0; d < dim-1 && nodeCount > 1; d++ {
		// Number of slabs along this dimension.
		slabs := int(math.Ceil(math.Pow(float64(nodeCount), 1/float64(dim-d))))
		if slabs < 1 {
			slabs = 1
		}
		var next [][]entry
		for _, g := range groups {
			sortByCenter(g, d)
			per := (len(g) + slabs - 1) / slabs
			if per < maxEntries {
				per = maxEntries
			}
			for i := 0; i < len(g); i += per {
				end := i + per
				if end > len(g) {
					end = len(g)
				}
				next = append(next, g[i:end])
			}
		}
		groups = next
		nodeCount = 0
		for _, g := range groups {
			nodeCount += (len(g) + maxEntries - 1) / maxEntries
		}
	}
	minEntries := maxEntries / 2
	if minEntries < 1 {
		minEntries = 1
	}
	var nodes []*node
	for _, g := range groups {
		sortByCenter(g, dim-1)
		for i := 0; i < len(g); i += maxEntries {
			end := i + maxEntries
			if end > len(g) {
				end = len(g)
			}
			chunk := make([]entry, end-i)
			copy(chunk, g[i:end])
			nodes = append(nodes, &node{leaf: leaf, entries: chunk})
		}
	}
	// STR can leave one underfull trailing node per run; rebalance it with
	// its predecessor so every non-root node meets the minimum occupancy
	// the incremental algorithms maintain.
	for i := 1; i < len(nodes); i++ {
		cur := nodes[i]
		prev := nodes[i-1]
		if len(cur.entries) >= minEntries || cur.leaf != prev.leaf {
			continue
		}
		combined := append(append([]entry{}, prev.entries...), cur.entries...)
		half := len(combined) / 2
		prev.entries = combined[:half]
		cur.entries = combined[half:]
	}
	return nodes
}

func sortByCenter(es []entry, d int) {
	sort.Slice(es, func(i, j int) bool {
		ci := es[i].rect.Min[d] + es[i].rect.Max[d]
		cj := es[j].rect.Min[d] + es[j].rect.Max[d]
		return ci < cj
	})
}

func fixParents(n *node) {
	if n.leaf {
		return
	}
	for i := range n.entries {
		n.entries[i].child.parent = n
		fixParents(n.entries[i].child)
	}
}
