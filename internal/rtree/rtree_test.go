package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randPoint(rng *rand.Rand, dim int) []float64 {
	p := make([]float64, dim)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ dim, max int }{{0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.dim, c.max)
				}
			}()
			New(c.dim, c.max)
		}()
	}
	tr := New(3, 8)
	if tr.Dim() != 3 || tr.Len() != 0 {
		t.Fatal("fresh tree state wrong")
	}
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect([]float64{0, 0}, []float64{1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := NewRect([]float64{2}, []float64{1}); err == nil {
		t.Fatal("inverted rect accepted")
	}
	if _, err := NewRect([]float64{0, 0}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRectPredicates(t *testing.T) {
	a, _ := NewRect([]float64{0, 0}, []float64{2, 2})
	b, _ := NewRect([]float64{1, 1}, []float64{3, 3})
	c, _ := NewRect([]float64{5, 5}, []float64{6, 6})
	if !a.Intersects(b) || a.Intersects(c) {
		t.Fatal("Intersects wrong")
	}
	if !a.Intersects(a) {
		t.Fatal("self intersection")
	}
	inner, _ := NewRect([]float64{0.5, 0.5}, []float64{1, 1})
	if !a.Contains(inner) || a.Contains(b) {
		t.Fatal("Contains wrong")
	}
	// Touching boundaries intersect.
	d, _ := NewRect([]float64{2, 0}, []float64{3, 2})
	if !a.Intersects(d) {
		t.Fatal("touching rects do not intersect")
	}
}

func TestMinDistSq(t *testing.T) {
	r, _ := NewRect([]float64{1, 1}, []float64{2, 2})
	if d := r.minDistSq([]float64{1.5, 1.5}); d != 0 {
		t.Fatalf("inside point dist %v", d)
	}
	if d := r.minDistSq([]float64{0, 1.5}); d != 1 {
		t.Fatalf("left point dist %v", d)
	}
	if d := r.minDistSq([]float64{0, 0}); d != 2 {
		t.Fatalf("corner point dist %v", d)
	}
}

func TestInsertAndExhaustiveSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New(4, 6)
	type item struct {
		p  []float64
		id uint64
	}
	var items []item
	for i := 0; i < 500; i++ {
		p := randPoint(rng, 4)
		id := uint64(i + 1)
		items = append(items, item{p, id})
		if err := tr.InsertPoint(p, id); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Compare tree range search against linear scan for random windows.
	for trial := 0; trial < 50; trial++ {
		min := randPoint(rng, 4)
		max := make([]float64, 4)
		for i := range max {
			max[i] = min[i] + rng.Float64()*0.5
		}
		window, _ := NewRect(min, max)
		got, err := tr.SearchIntersect(window)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for _, it := range items {
			if window.Contains(Point(it.p)) {
				want = append(want, it.id)
			}
		}
		sortU(got)
		sortU(want)
		if !equalU(got, want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
	}
}

func TestSearchDimMismatch(t *testing.T) {
	tr := New(3, 4)
	if _, err := tr.SearchIntersect(Point([]float64{0, 0})); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if err := tr.InsertPoint([]float64{0}, 1); err == nil {
		t.Fatal("insert dim mismatch accepted")
	}
}

func TestNearestKMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New(3, 8)
	var pts [][]float64
	for i := 0; i < 300; i++ {
		p := randPoint(rng, 3)
		pts = append(pts, p)
		if err := tr.InsertPoint(p, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 30; trial++ {
		q := randPoint(rng, 3)
		k := 1 + rng.Intn(10)
		got, err := tr.NearestK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("got %d neighbors, want %d", len(got), k)
		}
		// Linear scan ground truth.
		type cand struct {
			id uint64
			d  float64
		}
		var cands []cand
		for i, p := range pts {
			d := 0.0
			for j := range p {
				v := p[j] - q[j]
				d += v * v
			}
			cands = append(cands, cand{uint64(i + 1), math.Sqrt(d)})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Dist-cands[i].d) > 1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %v, want %v", trial, i, got[i].Dist, cands[i].d)
			}
		}
		// Distances are non-decreasing.
		for i := 1; i < k; i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("neighbors not sorted by distance")
			}
		}
	}
}

func TestNearestKValidation(t *testing.T) {
	tr := New(2, 4)
	if _, err := tr.NearestK([]float64{0}, 1); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := tr.NearestK([]float64{0, 0}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// k larger than tree returns everything.
	tr.InsertPoint([]float64{1, 1}, 1)
	got, err := tr.NearestK([]float64{0, 0}, 5)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New(2, 4)
	var pts [][]float64
	for i := 0; i < 200; i++ {
		p := randPoint(rng, 2)
		pts = append(pts, p)
		tr.InsertPoint(p, uint64(i+1))
	}
	// Delete half, verifying presence/absence by search.
	for i := 0; i < 100; i++ {
		ok, err := tr.Delete(Point(pts[i]), uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("entry %d not found for deletion", i+1)
		}
		if i%20 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d after deletes", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	everything, _ := NewRect([]float64{0, 0}, []float64{1, 1})
	got, _ := tr.SearchIntersect(everything)
	sortU(got)
	for _, id := range got {
		if id <= 100 {
			t.Fatalf("deleted id %d still present", id)
		}
	}
	if len(got) != 100 {
		t.Fatalf("%d survivors", len(got))
	}
	// Deleting a missing entry reports false.
	ok, err := tr.Delete(Point(pts[0]), 1)
	if err != nil || ok {
		t.Fatalf("re-delete: %v %v", ok, err)
	}
	// Dim mismatch.
	if _, err := tr.Delete(Point([]float64{0}), 1); err == nil {
		t.Fatal("delete dim mismatch accepted")
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := New(2, 4)
	for i := 0; i < 50; i++ {
		tr.InsertPoint([]float64{float64(i), float64(i)}, uint64(i+1))
	}
	for i := 0; i < 50; i++ {
		if ok, _ := tr.Delete(Point([]float64{float64(i), float64(i)}), uint64(i+1)); !ok {
			t.Fatalf("delete %d failed", i+1)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Tree is reusable after total deletion.
	tr.InsertPoint([]float64{0.5, 0.5}, 99)
	got, _ := tr.NearestK([]float64{0, 0}, 1)
	if len(got) != 1 || got[0].ID != 99 {
		t.Fatalf("reuse failed: %v", got)
	}
}

func TestDuplicatePointsAllowed(t *testing.T) {
	tr := New(2, 4)
	p := []float64{0.3, 0.3}
	for i := 0; i < 10; i++ {
		tr.InsertPoint(p, uint64(i+1))
	}
	got, _ := tr.SearchIntersect(Point(p))
	if len(got) != 10 {
		t.Fatalf("%d of 10 duplicates found", len(got))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func sortU(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func equalU(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 5, 16, 17, 100, 333, 1000} {
		items := make([]BulkItem, n)
		inc := New(4, 8)
		for i := range items {
			p := randPoint(rng, 4)
			items[i] = BulkItem{Rect: Point(p), ID: uint64(i + 1)}
			inc.InsertPoint(p, uint64(i+1))
		}
		bulk, err := BulkLoad(4, 8, items)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if bulk.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, bulk.Len())
		}
		if err := bulk.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: invariants: %v", n, err)
		}
		// Search equivalence on random windows.
		for trial := 0; trial < 20; trial++ {
			min := randPoint(rng, 4)
			max := make([]float64, 4)
			for d := range max {
				max[d] = min[d] + rng.Float64()*0.6
			}
			window, _ := NewRect(min, max)
			a, err := bulk.SearchIntersect(window)
			if err != nil {
				t.Fatal(err)
			}
			b, err := inc.SearchIntersect(window)
			if err != nil {
				t.Fatal(err)
			}
			sortU(a)
			sortU(b)
			if !equalU(a, b) {
				t.Fatalf("n=%d trial %d: bulk %d hits, incremental %d", n, trial, len(a), len(b))
			}
		}
	}
}

func TestBulkLoadNearestAndMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := make([]BulkItem, 200)
	pts := make([][]float64, 200)
	for i := range items {
		pts[i] = randPoint(rng, 3)
		items[i] = BulkItem{Rect: Point(pts[i]), ID: uint64(i + 1)}
	}
	tr, err := BulkLoad(3, 8, items)
	if err != nil {
		t.Fatal(err)
	}
	q := randPoint(rng, 3)
	got, err := tr.NearestK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against linear scan.
	best := -1
	bestD := math.Inf(1)
	for i, p := range pts {
		d := 0.0
		for j := range p {
			v := p[j] - q[j]
			d += v * v
		}
		if d < bestD {
			bestD, best = d, i
		}
	}
	if got[0].ID != uint64(best+1) {
		t.Fatalf("bulk NN = %d, want %d", got[0].ID, best+1)
	}
	// The bulk tree stays fully mutable.
	if err := tr.InsertPoint(randPoint(rng, 3), 999); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr.Delete(Point(pts[0]), 1); err != nil || !ok {
		t.Fatalf("delete from bulk tree: %v %v", ok, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(2, 4, []BulkItem{{Rect: Point([]float64{1}), ID: 1}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	empty, err := BulkLoad(2, 4, nil)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty bulk: %v", err)
	}
}
