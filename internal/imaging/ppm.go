package imaging

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
)

// The paper's prototype used the pbmplus tool suite to convert between the
// text-based PPM format and binary formats. We implement both PPM variants
// natively: P3 (ASCII) and P6 (raw binary), with an 8-bit maxval.

// ErrPPMSyntax is wrapped by all PPM decode errors.
var ErrPPMSyntax = errors.New("imaging: invalid PPM")

// EncodePPM writes m to w in binary PPM (P6) format.
func EncodePPM(w io.Writer, m *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	buf := make([]byte, 3*m.W)
	for y := 0; y < m.H; y++ {
		row := m.Pix[y*m.W : (y+1)*m.W]
		for x, p := range row {
			buf[3*x], buf[3*x+1], buf[3*x+2] = p.R, p.G, p.B
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodePPMPlain writes m to w in ASCII PPM (P3) format, the text format the
// paper's Perl prototype manipulated directly.
func EncodePPMPlain(w io.Writer, m *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P3\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			p := m.Pix[y*m.W+x]
			sep := " "
			if x == m.W-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(bw, "%d %d %d%s", p.R, p.G, p.B, sep); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodePPM reads a P3 or P6 PPM image from r. Comments (# to end of line)
// are honored in the header; maxvals other than 255 are rescaled to 8 bits.
func DecodePPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 2)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrPPMSyntax, err)
	}
	var plain bool
	switch string(magic) {
	case "P3":
		plain = true
	case "P6":
		plain = false
	default:
		return nil, fmt.Errorf("%w: magic %q (want P3 or P6)", ErrPPMSyntax, magic)
	}
	w, err := readPPMInt(br)
	if err != nil {
		return nil, fmt.Errorf("%w: width: %v", ErrPPMSyntax, err)
	}
	h, err := readPPMInt(br)
	if err != nil {
		return nil, fmt.Errorf("%w: height: %v", ErrPPMSyntax, err)
	}
	maxval, err := readPPMInt(br)
	if err != nil {
		return nil, fmt.Errorf("%w: maxval: %v", ErrPPMSyntax, err)
	}
	// Per-dimension caps matter independently of the area: a 0×2000000000
	// image has zero pixels but its row count alone would make encoders and
	// consumers iterate for minutes (found by fuzzing).
	if w < 0 || h < 0 || w > 1<<16 || h > 1<<16 || w*h > 1<<28 {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d", ErrPPMSyntax, w, h)
	}
	if maxval <= 0 || maxval > 65535 {
		return nil, fmt.Errorf("%w: maxval %d out of range", ErrPPMSyntax, maxval)
	}
	img := New(w, h)
	if plain {
		for i := 0; i < w*h; i++ {
			var c [3]int
			for j := 0; j < 3; j++ {
				v, err := readPPMInt(br)
				if err != nil {
					return nil, fmt.Errorf("%w: sample %d: %v", ErrPPMSyntax, i, err)
				}
				if v < 0 || v > maxval {
					return nil, fmt.Errorf("%w: sample %d value %d exceeds maxval %d", ErrPPMSyntax, i, v, maxval)
				}
				c[j] = v
			}
			img.Pix[i] = RGB{scaleSample(c[0], maxval), scaleSample(c[1], maxval), scaleSample(c[2], maxval)}
		}
		return img, nil
	}
	// P6: exactly one whitespace byte separates the maxval from the raster,
	// already consumed by readPPMInt.
	bytesPer := 1
	if maxval > 255 {
		bytesPer = 2
	}
	buf := make([]byte, 3*bytesPer*w)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: raster row %d: %v", ErrPPMSyntax, y, err)
		}
		for x := 0; x < w; x++ {
			var c [3]int
			for j := 0; j < 3; j++ {
				if bytesPer == 1 {
					c[j] = int(buf[3*x+j])
				} else {
					o := 6*x + 2*j
					c[j] = int(buf[o])<<8 | int(buf[o+1])
				}
			}
			img.Pix[y*w+x] = RGB{scaleSample(c[0], maxval), scaleSample(c[1], maxval), scaleSample(c[2], maxval)}
		}
	}
	return img, nil
}

func scaleSample(v, maxval int) uint8 {
	if maxval == 255 {
		return uint8(v)
	}
	return uint8((v*255 + maxval/2) / maxval)
}

// readPPMInt reads the next whitespace-delimited unsigned decimal integer,
// skipping comments. After the integer it consumes exactly the single
// delimiter byte, as the P6 raster begins immediately after the maxval's
// delimiter.
func readPPMInt(br *bufio.Reader) (int, error) {
	// Skip whitespace and comments.
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil {
				return 0, err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			// keep skipping
		case b >= '0' && b <= '9':
			if err := br.UnreadByte(); err != nil {
				return 0, err
			}
			goto digits
		default:
			return 0, fmt.Errorf("unexpected byte %q", b)
		}
	}
digits:
	var digits []byte
	for {
		b, err := br.ReadByte()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, err
		}
		if b >= '0' && b <= '9' {
			digits = append(digits, b)
			continue
		}
		// The delimiter byte is consumed and not pushed back: this is what
		// lets the P6 raster begin at the correct offset.
		break
	}
	if len(digits) == 0 {
		return 0, errors.New("expected integer")
	}
	return strconv.Atoi(string(digits))
}

// WritePPMFile encodes m as binary PPM into path, creating or truncating it.
func WritePPMFile(path string, m *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePPM(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPPMFile decodes the PPM image stored at path.
func ReadPPMFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodePPM(f)
}
