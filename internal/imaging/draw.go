package imaging

// Drawing primitives used by the synthetic data-set generators
// (internal/dataset). All primitives clip against the image bounds.

// FillRect sets every pixel inside r (clipped to the image) to c.
func FillRect(m *Image, r Rect, c RGB) {
	r = r.Canon().Intersect(m.Bounds())
	for y := r.Y0; y < r.Y1; y++ {
		row := m.Pix[y*m.W+r.X0 : y*m.W+r.X1]
		for i := range row {
			row[i] = c
		}
	}
}

// HStripes fills the image with n equal-height horizontal stripes using the
// colors in order, repeating the palette if n exceeds its length. The last
// stripe absorbs any rounding remainder.
func HStripes(m *Image, n int, colors []RGB) {
	if n <= 0 || len(colors) == 0 {
		return
	}
	h := m.H / n
	for i := 0; i < n; i++ {
		y0 := i * h
		y1 := y0 + h
		if i == n-1 {
			y1 = m.H
		}
		FillRect(m, Rect{0, y0, m.W, y1}, colors[i%len(colors)])
	}
}

// VStripes fills the image with n equal-width vertical stripes.
func VStripes(m *Image, n int, colors []RGB) {
	if n <= 0 || len(colors) == 0 {
		return
	}
	w := m.W / n
	for i := 0; i < n; i++ {
		x0 := i * w
		x1 := x0 + w
		if i == n-1 {
			x1 = m.W
		}
		FillRect(m, Rect{x0, 0, x1, m.H}, colors[i%len(colors)])
	}
}

// FillEllipse fills the axis-aligned ellipse inscribed in r with c.
func FillEllipse(m *Image, r Rect, c RGB) {
	r = r.Canon()
	cx := float64(r.X0+r.X1-1) / 2
	cy := float64(r.Y0+r.Y1-1) / 2
	rx := float64(r.Dx()) / 2
	ry := float64(r.Dy()) / 2
	if rx <= 0 || ry <= 0 {
		return
	}
	clip := r.Intersect(m.Bounds())
	for y := clip.Y0; y < clip.Y1; y++ {
		dy := (float64(y) - cy) / ry
		for x := clip.X0; x < clip.X1; x++ {
			dx := (float64(x) - cx) / rx
			if dx*dx+dy*dy <= 1 {
				m.Pix[y*m.W+x] = c
			}
		}
	}
}

// FillCircle fills the circle of the given radius centered at (cx, cy).
func FillCircle(m *Image, cx, cy, radius int, c RGB) {
	FillEllipse(m, Rect{cx - radius, cy - radius, cx + radius + 1, cy + radius + 1}, c)
}

// DrawLine draws a 1-pixel Bresenham line from (x0,y0) to (x1,y1).
func DrawLine(m *Image, x0, y0, x1, y1 int, c RGB) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		m.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// DrawThickLine draws a line with the given stroke thickness by stamping a
// filled square at each Bresenham step.
func DrawThickLine(m *Image, x0, y0, x1, y1, thickness int, c RGB) {
	if thickness <= 1 {
		DrawLine(m, x0, y0, x1, y1, c)
		return
	}
	half := thickness / 2
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		FillRect(m, Rect{x0 - half, y0 - half, x0 + half + 1, y0 + half + 1}, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// FillTriangle fills the triangle with vertices (x0,y0), (x1,y1), (x2,y2)
// using a half-plane test over the bounding box.
func FillTriangle(m *Image, x0, y0, x1, y1, x2, y2 int, c RGB) {
	minX := min3(x0, x1, x2)
	maxX := max3(x0, x1, x2)
	minY := min3(y0, y1, y2)
	maxY := max3(y0, y1, y2)
	box := Rect{minX, minY, maxX + 1, maxY + 1}.Intersect(m.Bounds())
	// Twice the signed area; a degenerate triangle draws nothing.
	area := (x1-x0)*(y2-y0) - (x2-x0)*(y1-y0)
	if area == 0 {
		return
	}
	for y := box.Y0; y < box.Y1; y++ {
		for x := box.X0; x < box.X1; x++ {
			w0 := (x1-x0)*(y-y0) - (y1-y0)*(x-x0)
			w1 := (x2-x1)*(y-y1) - (y2-y1)*(x-x1)
			w2 := (x0-x2)*(y-y2) - (y0-y2)*(x-x2)
			if (w0 >= 0 && w1 >= 0 && w2 >= 0) || (w0 <= 0 && w1 <= 0 && w2 <= 0) {
				m.Pix[y*m.W+x] = c
			}
		}
	}
}

// NordicCross draws a Scandinavian-style cross: a vertical bar centered at
// fraction fx of the width crossed by a horizontal bar at fraction fy of the
// height, both of the given thickness.
func NordicCross(m *Image, fx, fy float64, thickness int, c RGB) {
	cx := int(float64(m.W) * fx)
	cy := int(float64(m.H) * fy)
	FillRect(m, Rect{cx - thickness/2, 0, cx + (thickness+1)/2, m.H}, c)
	FillRect(m, Rect{0, cy - thickness/2, m.W, cy + (thickness+1)/2}, c)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
