package imaging

import "testing"

var (
	red   = RGB{255, 0, 0}
	green = RGB{0, 255, 0}
	blue  = RGB{0, 0, 255}
	white = RGB{255, 255, 255}
)

func TestFillRectClips(t *testing.T) {
	img := New(4, 4)
	FillRect(img, R(-5, -5, 2, 2), red)
	if got := img.CountColor(red); got != 4 {
		t.Fatalf("clipped fill painted %d pixels, want 4", got)
	}
	FillRect(img, R(3, 3, 99, 99), blue)
	if got := img.CountColor(blue); got != 1 {
		t.Fatalf("clipped fill painted %d pixels, want 1", got)
	}
}

func TestFillRectCanonicalizes(t *testing.T) {
	img := New(4, 4)
	FillRect(img, R(3, 3, 1, 1), green) // reversed corners
	if got := img.CountColor(green); got != 4 {
		t.Fatalf("reversed rect painted %d pixels, want 4", got)
	}
}

func TestHStripesCoverAndOrder(t *testing.T) {
	img := New(6, 9)
	HStripes(img, 3, []RGB{red, white, blue})
	if img.At(0, 0) != red || img.At(0, 4) != white || img.At(0, 8) != blue {
		t.Fatal("stripe order wrong")
	}
	if img.CountColor(red)+img.CountColor(white)+img.CountColor(blue) != img.Size() {
		t.Fatal("stripes do not cover image")
	}
}

func TestHStripesRemainderGoesToLast(t *testing.T) {
	img := New(2, 10)
	HStripes(img, 3, []RGB{red, white, blue})
	// 10/3 = 3 rows each for first two stripes, last takes 4.
	if got := img.CountColor(blue); got != 4*2 {
		t.Fatalf("last stripe has %d pixels, want 8", got)
	}
}

func TestVStripes(t *testing.T) {
	img := New(9, 3)
	VStripes(img, 3, []RGB{red, white, blue})
	if img.At(0, 0) != red || img.At(4, 0) != white || img.At(8, 0) != blue {
		t.Fatal("vertical stripe order wrong")
	}
}

func TestStripesDegenerateInputs(t *testing.T) {
	img := NewFilled(4, 4, white)
	HStripes(img, 0, []RGB{red})
	VStripes(img, 3, nil)
	if img.CountColor(white) != 16 {
		t.Fatal("degenerate stripes modified image")
	}
}

func TestFillCircleSymmetryAndArea(t *testing.T) {
	img := New(21, 21)
	FillCircle(img, 10, 10, 8, red)
	n := img.CountColor(red)
	// Area must be within 15% of pi*r^2.
	ideal := 3.14159 * 64
	if f := float64(n); f < ideal*0.85 || f > ideal*1.15 {
		t.Fatalf("circle area %d, ideal %.0f", n, ideal)
	}
	// 4-fold symmetry.
	for dy := -8; dy <= 8; dy++ {
		for dx := -8; dx <= 8; dx++ {
			a := img.At(10+dx, 10+dy) == red
			b := img.At(10-dx, 10+dy) == red
			c := img.At(10+dx, 10-dy) == red
			if a != b || a != c {
				t.Fatalf("asymmetry at (%d,%d)", dx, dy)
			}
		}
	}
}

func TestFillEllipseDegenerate(t *testing.T) {
	img := NewFilled(4, 4, white)
	FillEllipse(img, R(2, 2, 2, 4), red) // zero width
	if img.CountColor(red) != 0 {
		t.Fatal("degenerate ellipse painted pixels")
	}
}

func TestDrawLineEndpointsAndConnectivity(t *testing.T) {
	img := New(10, 10)
	DrawLine(img, 1, 1, 8, 5, red)
	if img.At(1, 1) != red || img.At(8, 5) != red {
		t.Fatal("line endpoints not painted")
	}
	// Every column between x=1..8 must contain a red pixel (slope < 1).
	for x := 1; x <= 8; x++ {
		found := false
		for y := 0; y < 10; y++ {
			if img.At(x, y) == red {
				found = true
			}
		}
		if !found {
			t.Fatalf("column %d has no line pixel", x)
		}
	}
}

func TestDrawLineAllOctants(t *testing.T) {
	for _, e := range [][4]int{{5, 5, 9, 7}, {5, 5, 1, 7}, {5, 5, 9, 3}, {5, 5, 1, 3}, {5, 5, 5, 9}, {5, 5, 9, 5}, {5, 5, 5, 1}, {5, 5, 1, 5}} {
		img := New(11, 11)
		DrawLine(img, e[0], e[1], e[2], e[3], red)
		if img.At(e[0], e[1]) != red || img.At(e[2], e[3]) != red {
			t.Fatalf("endpoints missing for %v", e)
		}
	}
}

func TestDrawThickLine(t *testing.T) {
	img := New(20, 20)
	DrawThickLine(img, 2, 10, 17, 10, 5, red)
	// Column 10 should be ~5 pixels tall of red.
	n := 0
	for y := 0; y < 20; y++ {
		if img.At(10, y) == red {
			n++
		}
	}
	if n < 4 || n > 6 {
		t.Fatalf("thick line height %d, want ~5", n)
	}
	// Thickness 1 falls back to DrawLine.
	img2 := New(20, 20)
	DrawThickLine(img2, 0, 0, 19, 19, 1, red)
	if img2.At(0, 0) != red || img2.At(19, 19) != red {
		t.Fatal("thin fallback failed")
	}
}

func TestFillTriangle(t *testing.T) {
	img := New(20, 20)
	FillTriangle(img, 1, 1, 18, 1, 1, 18, red)
	if img.At(2, 2) != red {
		t.Fatal("triangle interior not filled")
	}
	if img.At(18, 18) == red {
		t.Fatal("triangle exterior filled")
	}
	n := img.CountColor(red)
	if n < 120 || n > 200 { // exact half-square area is ~153
		t.Fatalf("triangle area %d out of range", n)
	}
	// Degenerate triangle draws nothing.
	img2 := New(10, 10)
	FillTriangle(img2, 1, 1, 5, 5, 9, 9, red)
	if img2.CountColor(red) != 0 {
		t.Fatal("degenerate triangle painted")
	}
}

func TestNordicCross(t *testing.T) {
	img := NewFilled(30, 20, red)
	NordicCross(img, 0.35, 0.5, 4, white)
	// The cross center must be white, corners must remain red.
	if img.At(10, 10) != white {
		t.Fatal("cross center not painted")
	}
	if img.At(0, 0) != red || img.At(29, 19) != red {
		t.Fatal("corners overpainted")
	}
	// Both bars present: full column and full row of white.
	for y := 0; y < 20; y++ {
		if img.At(10, y) != white {
			t.Fatalf("vertical bar broken at y=%d", y)
		}
	}
	for x := 0; x < 30; x++ {
		if img.At(x, 10) != white {
			t.Fatalf("horizontal bar broken at x=%d", x)
		}
	}
}
