package imaging

import "fmt"

// Rect is a half-open rectangle [X0,X1)×[Y0,Y1), the same convention as Go's
// image.Rectangle. It is used for Defined Regions (DRs) in edit sequences and
// for clipping in the drawing primitives.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is shorthand for constructing a rectangle.
func R(x0, y0, x1, y1 int) Rect { return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1} }

// String renders the rectangle as (x0,y0)-(x1,y1).
func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d)-(%d,%d)", r.X0, r.Y0, r.X1, r.Y1)
}

// Dx returns the width (0 if empty).
func (r Rect) Dx() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// Dy returns the height (0 if empty).
func (r Rect) Dy() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns Dx·Dy.
func (r Rect) Area() int { return r.Dx() * r.Dy() }

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Contains reports whether (x, y) is inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// ContainsRect reports whether o is entirely inside r. An empty o is
// contained in anything.
func (r Rect) ContainsRect(o Rect) bool {
	if o.Empty() {
		return true
	}
	return o.X0 >= r.X0 && o.X1 <= r.X1 && o.Y0 >= r.Y0 && o.Y1 <= r.Y1
}

// Intersect returns the largest rectangle contained in both r and o. If the
// rectangles do not overlap the result is empty.
func (r Rect) Intersect(o Rect) Rect {
	if o.X0 > r.X0 {
		r.X0 = o.X0
	}
	if o.Y0 > r.Y0 {
		r.Y0 = o.Y0
	}
	if o.X1 < r.X1 {
		r.X1 = o.X1
	}
	if o.Y1 < r.Y1 {
		r.Y1 = o.Y1
	}
	if r.Empty() {
		return Rect{}
	}
	return r
}

// Union returns the smallest rectangle containing both r and o. Empty
// rectangles are ignored.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	if o.X0 < r.X0 {
		r.X0 = o.X0
	}
	if o.Y0 < r.Y0 {
		r.Y0 = o.Y0
	}
	if o.X1 > r.X1 {
		r.X1 = o.X1
	}
	if o.Y1 > r.Y1 {
		r.Y1 = o.Y1
	}
	return r
}

// Translate returns the rectangle shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
}

// Canon returns the canonical form of r: coordinates swapped if necessary so
// that X0 ≤ X1 and Y0 ≤ Y1.
func (r Rect) Canon() Rect {
	if r.X1 < r.X0 {
		r.X0, r.X1 = r.X1, r.X0
	}
	if r.Y1 < r.Y0 {
		r.Y0, r.Y1 = r.Y1, r.Y0
	}
	return r
}
