package imaging

import (
	"bytes"
	"testing"
)

// FuzzDecodePPM asserts the decoder never panics and that anything it
// accepts re-encodes and re-decodes to the same pixels.
func FuzzDecodePPM(f *testing.F) {
	var seed bytes.Buffer
	EncodePPM(&seed, NewFilled(3, 2, RGB{R: 10, G: 20, B: 30}))
	f.Add(seed.Bytes())
	var plain bytes.Buffer
	EncodePPMPlain(&plain, NewFilled(2, 2, RGB{R: 255}))
	f.Add(plain.Bytes())
	f.Add([]byte("P3\n1 1\n255\n1 2 3\n"))
	f.Add([]byte("P6\n"))
	f.Add([]byte("P3\n# comment\n2 1\n15\n15 0 0 0 15 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodePPM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if img.W*img.H != len(img.Pix) {
			t.Fatalf("inconsistent decode: %dx%d with %d pixels", img.W, img.H, len(img.Pix))
		}
		var buf bytes.Buffer
		if err := EncodePPM(&buf, img); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := DecodePPM(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !img.Equal(again) {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}
