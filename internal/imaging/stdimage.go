package imaging

import (
	"image"
	"image/color"
	"image/png"
	"io"
)

// Bridges to Go's standard image types so databases can ingest PNGs and
// export results for viewing.

// ToStdImage converts m to an *image.RGBA.
func ToStdImage(m *Image) *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			p := m.Pix[y*m.W+x]
			out.SetRGBA(x, y, color.RGBA{R: p.R, G: p.G, B: p.B, A: 0xff})
		}
	}
	return out
}

// FromStdImage converts any standard image to an Image, discarding alpha by
// compositing over black (straightforward truncation of the premultiplied
// values returned by RGBA()).
func FromStdImage(src image.Image) *Image {
	b := src.Bounds()
	out := New(b.Dx(), b.Dy())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := src.At(x, y).RGBA()
			out.Pix[(y-b.Min.Y)*out.W+(x-b.Min.X)] = RGB{uint8(r >> 8), uint8(g >> 8), uint8(bl >> 8)}
		}
	}
	return out
}

// EncodePNG writes m to w as a PNG.
func EncodePNG(w io.Writer, m *Image) error {
	return png.Encode(w, ToStdImage(m))
}

// DecodePNG reads a PNG from r.
func DecodePNG(r io.Reader) (*Image, error) {
	src, err := png.Decode(r)
	if err != nil {
		return nil, err
	}
	return FromStdImage(src), nil
}
