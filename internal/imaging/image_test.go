package imaging

import (
	"testing"
	"testing/quick"
)

func TestNewDimensionsAndZeroFill(t *testing.T) {
	img := New(7, 5)
	if img.W != 7 || img.H != 5 {
		t.Fatalf("dims = %dx%d, want 7x5", img.W, img.H)
	}
	if img.Size() != 35 {
		t.Fatalf("Size = %d, want 35", img.Size())
	}
	for i, p := range img.Pix {
		if p != (RGB{}) {
			t.Fatalf("pixel %d = %v, want zero", i, p)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 3) did not panic")
		}
	}()
	New(-1, 3)
}

func TestNewFilled(t *testing.T) {
	c := RGB{10, 20, 30}
	img := NewFilled(4, 4, c)
	if got := img.CountColor(c); got != 16 {
		t.Fatalf("CountColor = %d, want 16", got)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	img := New(3, 3)
	img.Set(1, 2, RGB{9, 8, 7})
	if got := img.At(1, 2); got != (RGB{9, 8, 7}) {
		t.Fatalf("At(1,2) = %v", got)
	}
	// Out-of-range Set is a no-op, not a panic.
	img.Set(-1, 0, RGB{1, 1, 1})
	img.Set(3, 0, RGB{1, 1, 1})
	if img.CountColor(RGB{1, 1, 1}) != 0 {
		t.Fatal("out-of-range Set modified the image")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := NewFilled(2, 2, RGB{1, 2, 3})
	b := a.Clone()
	b.Set(0, 0, RGB{9, 9, 9})
	if a.At(0, 0) != (RGB{1, 2, 3}) {
		t.Fatal("Clone shares pixel storage")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestEqualAndDiffCount(t *testing.T) {
	a := NewFilled(3, 2, RGB{5, 5, 5})
	b := a.Clone()
	if !a.Equal(b) || a.DiffCount(b) != 0 {
		t.Fatal("identical images reported different")
	}
	b.Set(2, 1, RGB{0, 0, 0})
	if a.Equal(b) {
		t.Fatal("differing images reported equal")
	}
	if got := a.DiffCount(b); got != 1 {
		t.Fatalf("DiffCount = %d, want 1", got)
	}
	c := New(4, 4)
	if got := a.DiffCount(c); got != 16 {
		t.Fatalf("DiffCount across dims = %d, want 16", got)
	}
}

func TestSubImage(t *testing.T) {
	img := New(6, 6)
	FillRect(img, R(2, 2, 5, 4), RGB{255, 0, 0})
	sub := img.SubImage(R(2, 2, 5, 4))
	if sub.W != 3 || sub.H != 2 {
		t.Fatalf("sub dims = %dx%d, want 3x2", sub.W, sub.H)
	}
	if sub.CountColor(RGB{255, 0, 0}) != 6 {
		t.Fatalf("sub content wrong: %v", sub.Pix)
	}
	// Clipping beyond bounds.
	sub2 := img.SubImage(R(4, 4, 100, 100))
	if sub2.W != 2 || sub2.H != 2 {
		t.Fatalf("clipped sub dims = %dx%d, want 2x2", sub2.W, sub2.H)
	}
	// Empty intersection.
	if s := img.SubImage(R(10, 10, 20, 20)); s.Size() != 0 {
		t.Fatalf("empty sub has %d pixels", s.Size())
	}
}

func TestPalette(t *testing.T) {
	img := New(4, 1)
	img.Pix[0] = RGB{1, 0, 0}
	img.Pix[1] = RGB{0, 1, 0}
	img.Pix[2] = RGB{1, 0, 0}
	img.Pix[3] = RGB{0, 0, 1}
	pal := img.Palette()
	want := []RGB{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if len(pal) != len(want) {
		t.Fatalf("palette = %v", pal)
	}
	for i := range want {
		if pal[i] != want[i] {
			t.Fatalf("palette[%d] = %v, want %v", i, pal[i], want[i])
		}
	}
}

func TestRGBString(t *testing.T) {
	if got := (RGB{255, 16, 0}).String(); got != "#ff1000" {
		t.Fatalf("String = %q", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(1, 2, 4, 6)
	if r.Dx() != 3 || r.Dy() != 4 || r.Area() != 12 {
		t.Fatalf("Dx/Dy/Area = %d/%d/%d", r.Dx(), r.Dy(), r.Area())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !r.Contains(1, 2) || r.Contains(4, 2) || r.Contains(1, 6) {
		t.Fatal("Contains half-open semantics broken")
	}
	if R(3, 3, 3, 9).Dx() != 0 || !R(3, 3, 3, 9).Empty() {
		t.Fatal("degenerate rect not empty")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	if !a.Intersect(R(20, 20, 30, 30)).Empty() {
		t.Fatal("disjoint Intersect not empty")
	}
	if u := a.Union(b); u != R(0, 0, 15, 15) {
		t.Fatalf("Union = %v", u)
	}
	if u := (Rect{}).Union(a); u != a {
		t.Fatalf("Union with empty = %v", u)
	}
	if u := a.Union(Rect{}); u != a {
		t.Fatalf("Union with empty rhs = %v", u)
	}
}

func TestRectContainsRectAndTranslate(t *testing.T) {
	a := R(0, 0, 10, 10)
	if !a.ContainsRect(R(2, 2, 8, 8)) {
		t.Fatal("inner rect not contained")
	}
	if a.ContainsRect(R(5, 5, 11, 8)) {
		t.Fatal("overhanging rect contained")
	}
	if !a.ContainsRect(Rect{}) {
		t.Fatal("empty rect not contained")
	}
	if got := a.Translate(3, -2); got != R(3, -2, 13, 8) {
		t.Fatalf("Translate = %v", got)
	}
	if got := R(5, 7, 1, 2).Canon(); got != R(1, 2, 5, 7) {
		t.Fatalf("Canon = %v", got)
	}
}

func TestRectIntersectionIsContained(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := R(int(ax0), int(ay0), int(ax0)+int(aw), int(ay0)+int(ah))
		b := R(int(bx0), int(by0), int(bx0)+int(bw), int(by0)+int(bh))
		in := a.Intersect(b)
		if in.Empty() {
			return true
		}
		return a.ContainsRect(in) && b.ContainsRect(in) && a.Union(b).ContainsRect(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectAreaAdditiveUnderIntersection(t *testing.T) {
	// For rectangles a ⊆ image, sum over disjoint vertical split equals area.
	a := R(0, 0, 9, 9)
	left := a.Intersect(R(0, 0, 4, 9))
	right := a.Intersect(R(4, 0, 9, 9))
	if left.Area()+right.Area() != a.Area() {
		t.Fatalf("split areas %d+%d != %d", left.Area(), right.Area(), a.Area())
	}
}
