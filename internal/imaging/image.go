// Package imaging provides the raster substrate for the edit-sequence image
// database: a compact RGB image type, a PPM (P3/P6) codec compatible with the
// pbmplus format used by the paper's prototype, a bridge to Go's standard
// image types, and the drawing primitives the synthetic data-set generators
// are built on.
package imaging

import (
	"fmt"
)

// RGB is a 24-bit color pixel. It is the only pixel format the database
// stores; conversions to other color models live in internal/colorspace.
type RGB struct {
	R, G, B uint8
}

// String renders the color as #rrggbb.
func (c RGB) String() string {
	return fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B)
}

// Image is a W×H raster of RGB pixels stored row-major. The zero value is an
// empty (0×0) image. Pixel (x, y) lives at Pix[y*W+x]; x grows rightward and
// y grows downward, matching Go's image package orientation.
type Image struct {
	W, H int
	Pix  []RGB
}

// New returns a w×h image with every pixel set to the zero color (black).
// It panics if either dimension is negative.
func New(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imaging: negative dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// NewFilled returns a w×h image with every pixel set to c.
func NewFilled(w, h int, c RGB) *Image {
	img := New(w, h)
	for i := range img.Pix {
		img.Pix[i] = c
	}
	return img
}

// Size returns the total number of pixels (W·H).
func (m *Image) Size() int { return m.W * m.H }

// Bounds returns the image rectangle [0,W)×[0,H).
func (m *Image) Bounds() Rect { return Rect{X0: 0, Y0: 0, X1: m.W, Y1: m.H} }

// In reports whether (x, y) is inside the image.
func (m *Image) In(x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H
}

// At returns the pixel at (x, y). It panics on out-of-range coordinates;
// callers that may be out of range should test with In first.
func (m *Image) At(x, y int) RGB {
	if !m.In(x, y) {
		panic(fmt.Sprintf("imaging: At(%d,%d) outside %dx%d", x, y, m.W, m.H))
	}
	return m.Pix[y*m.W+x]
}

// Set writes the pixel at (x, y). Out-of-range writes are ignored so drawing
// code can clip for free.
func (m *Image) Set(x, y int, c RGB) {
	if !m.In(x, y) {
		return
	}
	m.Pix[y*m.W+x] = c
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Pix: make([]RGB, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// Equal reports whether two images have identical dimensions and pixels.
func (m *Image) Equal(o *Image) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i, p := range m.Pix {
		if p != o.Pix[i] {
			return false
		}
	}
	return true
}

// DiffCount returns the number of pixel positions at which the two images
// differ. Images of different dimensions are considered to differ everywhere,
// and the count of the larger pixel area is returned.
func (m *Image) DiffCount(o *Image) int {
	if m.W != o.W || m.H != o.H {
		a, b := m.Size(), o.Size()
		if a > b {
			return a
		}
		return b
	}
	n := 0
	for i, p := range m.Pix {
		if p != o.Pix[i] {
			n++
		}
	}
	return n
}

// SubImage returns a copy of the pixels inside r clipped to the image. The
// result has r's clipped dimensions; an empty intersection yields a 0×0
// image.
func (m *Image) SubImage(r Rect) *Image {
	r = r.Intersect(m.Bounds())
	out := New(r.Dx(), r.Dy())
	for y := r.Y0; y < r.Y1; y++ {
		copy(out.Pix[(y-r.Y0)*out.W:(y-r.Y0+1)*out.W], m.Pix[y*m.W+r.X0:y*m.W+r.X1])
	}
	return out
}

// CountColor returns the number of pixels exactly equal to c.
func (m *Image) CountColor(c RGB) int {
	n := 0
	for _, p := range m.Pix {
		if p == c {
			n++
		}
	}
	return n
}

// Palette returns the set of distinct colors in the image, in first-seen
// order. Intended for tests and dataset inspection on images with small
// palettes; it is O(pixels) time and O(distinct colors) space.
func (m *Image) Palette() []RGB {
	seen := make(map[RGB]bool)
	var out []RGB
	for _, p := range m.Pix {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
