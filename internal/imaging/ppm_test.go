package imaging

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func randomImage(rng *rand.Rand, w, h int) *Image {
	img := New(w, h)
	for i := range img.Pix {
		img.Pix[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	return img
}

func TestPPMBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {16, 9}, {64, 48}} {
		img := randomImage(rng, dims[0], dims[1])
		var buf bytes.Buffer
		if err := EncodePPM(&buf, img); err != nil {
			t.Fatalf("encode %v: %v", dims, err)
		}
		got, err := DecodePPM(&buf)
		if err != nil {
			t.Fatalf("decode %v: %v", dims, err)
		}
		if !img.Equal(got) {
			t.Fatalf("P6 round trip mismatch at %v", dims)
		}
	}
}

func TestPPMPlainRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := randomImage(rng, 11, 5)
	var buf bytes.Buffer
	if err := EncodePPMPlain(&buf, img); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P3\n11 5\n255\n") {
		t.Fatalf("unexpected header: %q", buf.String()[:20])
	}
	got, err := DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("P3 round trip mismatch")
	}
}

func TestPPMDecodeComments(t *testing.T) {
	src := "P3\n# a comment\n2 1\n# another\n255\n255 0 0  0 255 0\n"
	img, err := DecodePPM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 2 || img.H != 1 {
		t.Fatalf("dims %dx%d", img.W, img.H)
	}
	if img.At(0, 0) != (RGB{255, 0, 0}) || img.At(1, 0) != (RGB{0, 255, 0}) {
		t.Fatalf("pixels %v", img.Pix)
	}
}

func TestPPMDecodeMaxvalRescale(t *testing.T) {
	src := "P3\n1 1\n15\n15 0 7\n"
	img, err := DecodePPM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	p := img.At(0, 0)
	if p.R != 255 || p.G != 0 {
		t.Fatalf("rescaled pixel %v", p)
	}
	// 7/15 rounds to 119.
	if p.B != 119 {
		t.Fatalf("B = %d, want 119", p.B)
	}
}

func TestPPMDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"P9\n1 1\n255\n",
		"P3\n1\n",
		"P3\n1 1\n255\n300 0 0\n", // sample exceeds maxval
		"P6\n2 2\n255\nxx",        // truncated raster
		"P3\n1 1\n0\n0 0 0\n",     // maxval 0
	}
	for i, src := range cases {
		if _, err := DecodePPM(strings.NewReader(src)); err == nil {
			t.Errorf("case %d decoded without error", i)
		}
	}
}

func TestPPMFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ppm")
	img := randomImage(rand.New(rand.NewSource(3)), 8, 8)
	if err := WritePPMFile(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPPMFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	img := randomImage(rand.New(rand.NewSource(4)), 10, 6)
	var buf bytes.Buffer
	if err := EncodePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(got) {
		t.Fatal("PNG round trip mismatch")
	}
}

func TestStdImageRoundTrip(t *testing.T) {
	img := randomImage(rand.New(rand.NewSource(5)), 5, 5)
	if got := FromStdImage(ToStdImage(img)); !img.Equal(got) {
		t.Fatal("std image round trip mismatch")
	}
}

func TestPPMDecodeRejectsDegenerateHugeDimensions(t *testing.T) {
	// Zero-area but huge row count: must be rejected, not decoded into an
	// image whose consumers iterate billions of empty rows.
	cases := []string{
		"P3\n0 1711111111\n255\n",
		"P3\n1711111111 0\n255\n",
		"P6\n100000 1\n255\n",
	}
	for i, src := range cases {
		if _, err := DecodePPM(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
