package rbm

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/colorspace"
	"repro/internal/editops"
	"repro/internal/histogram"
	"repro/internal/imaging"
	"repro/internal/query"
	"repro/internal/rules"
)

var (
	q4    = colorspace.NewUniformRGB(4)
	red   = imaging.RGB{R: 200, G: 0, B: 0}
	green = imaging.RGB{R: 0, G: 200, B: 0}
	blue  = imaging.RGB{R: 0, G: 0, B: 200}
)

// fixture: three binary images (all red / half red / no red) plus edited
// versions.
func buildFixture(t *testing.T) (*catalog.Catalog, *rules.Engine, map[string]uint64) {
	t.Helper()
	cat := catalog.New()
	ids := map[string]uint64{}

	add := func(name string, img *imaging.Image) uint64 {
		id, err := cat.AddBinary(name, img.W, img.H, histogram.Extract(img, q4))
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
		return id
	}
	allRed := imaging.NewFilled(10, 10, red)
	halfRed := imaging.NewFilled(10, 10, green)
	imaging.FillRect(halfRed, imaging.R(0, 0, 10, 5), red)
	noRed := imaging.NewFilled(10, 10, blue)
	add("allred", allRed)
	add("halfred", halfRed)
	add("nored", noRed)

	addEdited := func(name string, seq *editops.Sequence) uint64 {
		base, err := cat.Binary(seq.BaseID)
		if err != nil {
			t.Fatal(err)
		}
		w := rules.SequenceIsWideningFor(seq.Ops, base.W, base.H)
		id, err := cat.AddEdited(name, seq, w)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
		return id
	}
	// Edited: no-red image recolored entirely to red → must match red
	// queries via bounds (max grows by |DR|).
	addEdited("nored-to-red", &editops.Sequence{
		BaseID: ids["nored"],
		Ops:    []editops.Op{editops.Modify{Old: blue, New: red}},
	})
	// Edited: all-red image possibly recolored away from red.
	addEdited("allred-away", &editops.Sequence{
		BaseID: ids["allred"],
		Ops:    []editops.Op{editops.Modify{Old: red, New: green}},
	})
	// Edited: half-red cropped to the red half (widening null merge).
	addEdited("halfred-crop", &editops.Sequence{
		BaseID: ids["halfred"],
		Ops:    editops.CropTo(imaging.R(0, 0, 10, 5)),
	})
	// Edited with a non-widening target merge onto the no-red image.
	addEdited("paste-on-nored", &editops.Sequence{
		BaseID: ids["allred"],
		Ops:    editops.PasteOnto(imaging.R(0, 0, 2, 2), ids["nored"], 0, 0),
	})

	engine := rules.NewEngine(q4, imaging.RGB{}, cat)
	return cat, engine, ids
}

func redRange(lo, hi float64) query.Range {
	return query.Range{Bin: q4.Bin(red), PctMin: lo, PctMax: hi}
}

func contains(ids []uint64, id uint64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func TestRangeExactBinaries(t *testing.T) {
	cat, engine, ids := buildFixture(t)
	p := New(cat, engine)
	res, err := p.Range(redRange(0.9, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if !contains(res.IDs, ids["allred"]) {
		t.Fatal("all-red binary missing")
	}
	if contains(res.IDs, ids["halfred"]) || contains(res.IDs, ids["nored"]) {
		t.Fatal("non-matching binary returned")
	}
	if res.Stats.BinariesChecked != 3 {
		t.Fatalf("BinariesChecked = %d", res.Stats.BinariesChecked)
	}
}

func TestRangeEditedBounds(t *testing.T) {
	cat, engine, ids := buildFixture(t)
	p := New(cat, engine)
	// "at least 90% red": the recolored no-red image COULD be fully red.
	res, err := p.Range(redRange(0.9, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if !contains(res.IDs, ids["nored-to-red"]) {
		t.Fatal("bounds-matching edited image missing")
	}
	if !contains(res.IDs, ids["halfred-crop"]) {
		t.Fatal("cropped edited image missing (could be 100% red)")
	}
	// Every edited image got a rule walk in RBM.
	if res.Stats.EditedWalked != 4 {
		t.Fatalf("EditedWalked = %d", res.Stats.EditedWalked)
	}
	if res.Stats.EditedSkipped != 0 {
		t.Fatal("RBM skipped an edited image")
	}
}

func TestRangePrunesImpossibleEdited(t *testing.T) {
	cat, engine, ids := buildFixture(t)
	p := New(cat, engine)
	// "at most 3% red" — the paste-on-nored image pastes a 2x2 red block on
	// a 10x10 blue image: at least 0 red... bounds min for red is
	// max(0, 100-(100-4)) + max(0,0-4) = 4... so ≥4%: pruned.
	res, err := p.Range(redRange(0, 0.03))
	if err != nil {
		t.Fatal(err)
	}
	if contains(res.IDs, ids["paste-on-nored"]) {
		t.Fatal("provably-red image returned by at-most-3%-red query")
	}
	if !contains(res.IDs, ids["nored"]) {
		t.Fatal("no-red binary missing from at-most query")
	}
}

func TestRangeResultsSorted(t *testing.T) {
	cat, engine, _ := buildFixture(t)
	p := New(cat, engine)
	res, err := p.Range(redRange(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.IDs); i++ {
		if res.IDs[i-1] >= res.IDs[i] {
			t.Fatalf("ids not sorted: %v", res.IDs)
		}
	}
	// [0,1] matches everything.
	nb, ne := cat.Len()
	if len(res.IDs) != nb+ne {
		t.Fatalf("full-range query returned %d of %d", len(res.IDs), nb+ne)
	}
}

func TestRangeValidates(t *testing.T) {
	cat, engine, _ := buildFixture(t)
	p := New(cat, engine)
	if _, err := p.Range(query.Range{Bin: -1}); err == nil {
		t.Fatal("invalid query accepted")
	}
	if _, err := p.Range(query.Range{Bin: 0, PctMin: 0.9, PctMax: 0.1}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestCheckEditedRejectsBinaryID(t *testing.T) {
	cat, engine, ids := buildFixture(t)
	p := New(cat, engine)
	var st Stats
	if _, err := p.CheckEdited(ids["allred"], redRange(0, 1), &st, nil); err == nil {
		t.Fatal("CheckEdited accepted a binary id")
	}
}
