// Package rbm implements the paper's Rule-Based Method query processor
// (§3): color range queries over the augmented database are answered by
// checking every binary image's exact histogram and running the BOUNDS rule
// walk over every edited image's full operation sequence. RBM produces no
// false negatives; edited images whose bound range overlaps the query range
// are returned even though their exact percentage is unknown.
//
// RBM is the baseline the Bound-Widening Method (internal/bwm) accelerates.
package rbm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/query"
	"repro/internal/rules"
)

// Stats instruments one query execution; the benchmarks report these
// alongside wall time to explain *why* BWM is faster (fewer rule
// evaluations).
type Stats struct {
	// BinariesChecked is the number of exact histogram tests.
	BinariesChecked int
	// EditedWalked is the number of edited images whose sequences were
	// evaluated with the rule engine.
	EditedWalked int
	// OpsEvaluated is the total number of operation rules applied.
	OpsEvaluated int
	// EditedSkipped counts edited images admitted without rule evaluation
	// (always zero for RBM; BWM reuses this type).
	EditedSkipped int
}

// Result is a query answer: matching object ids in ascending order plus
// execution statistics.
type Result struct {
	IDs   []uint64
	Stats Stats
}

// Processor executes RBM queries over a catalog with a rule engine.
type Processor struct {
	Cat    *catalog.Catalog
	Engine *rules.Engine
}

// New returns an RBM processor.
func New(cat *catalog.Catalog, engine *rules.Engine) *Processor {
	return &Processor{Cat: cat, Engine: engine}
}

// Range answers a color range query with the §3 algorithm: exact test for
// every binary image, full BOUNDS walk for every edited image.
func (p *Processor) Range(q query.Range) (*Result, error) {
	if err := q.Validate(p.Engine.Quant.Bins()); err != nil {
		return nil, err
	}
	res := &Result{}
	for _, id := range p.Cat.Binaries() {
		obj, err := p.Cat.Binary(id)
		if errors.Is(err, catalog.ErrNotFound) {
			continue // deleted since the id list was taken
		}
		if err != nil {
			return nil, err
		}
		res.Stats.BinariesChecked++
		if q.MatchesExact(obj.Hist) {
			res.IDs = append(res.IDs, id)
		}
	}
	for _, id := range p.Cat.EditedIDs() {
		ok, err := p.CheckEdited(id, q, &res.Stats)
		if err != nil {
			return nil, err
		}
		if ok {
			res.IDs = append(res.IDs, id)
		}
	}
	sortIDs(res.IDs)
	return res, nil
}

// CheckEdited runs the BOUNDS walk for one edited image and reports whether
// its bound range overlaps the query range. It is exported because BWM's
// algorithm (paper Fig. 2, steps 4.3 and 5) invokes exactly this procedure
// for cluster members whose base failed the query and for the Unclassified
// Component.
func (p *Processor) CheckEdited(id uint64, q query.Range, st *Stats) (bool, error) {
	obj, err := p.Cat.Edited(id)
	if errors.Is(err, catalog.ErrNotFound) {
		return false, nil // deleted since the id was listed
	}
	if err != nil {
		return false, err
	}
	base, err := p.Cat.Binary(obj.Seq.BaseID)
	if errors.Is(err, catalog.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("rbm: edited %d: %w", id, err)
	}
	st.EditedWalked++
	st.OpsEvaluated += len(obj.Seq.Ops)
	b, err := p.Engine.BoundsForBin(base.Hist, base.W, base.H, obj.Seq.Ops, q.Bin)
	if err != nil {
		return false, fmt.Errorf("rbm: edited %d: %w", id, err)
	}
	return b.Overlaps(q.PctMin, q.PctMax), nil
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
