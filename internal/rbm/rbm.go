// Package rbm implements the paper's Rule-Based Method query processor
// (§3): color range queries over the augmented database are answered by
// checking every binary image's exact histogram and running the BOUNDS rule
// walk over every edited image's full operation sequence. RBM produces no
// false negatives; edited images whose bound range overlaps the query range
// are returned even though their exact percentage is unknown.
//
// RBM is the baseline the Bound-Widening Method (internal/bwm) accelerates.
package rbm

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/editops"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rules"
)

// Process-wide counters: rule evaluations broken down by operation type
// (the cost RBM pays and BWM's fast path avoids), plus the edited-walk
// count. Indexed by editops.Kind for a branch-free hot path.
var (
	mEditedWalked = obs.Default().Counter("esidb_rbm_edited_walked_total")
	mRulesByKind  = func() [editops.KindMerge + 1]*obs.Counter {
		var out [editops.KindMerge + 1]*obs.Counter
		for k := editops.KindDefine; k <= editops.KindMerge; k++ {
			out[k] = obs.Default().Counter(fmt.Sprintf("esidb_rbm_rules_evaluated_total{op=%q}", k.String()))
		}
		return out
	}()
)

// Stats instruments one query execution; the benchmarks report these
// alongside wall time to explain *why* BWM is faster (fewer rule
// evaluations).
type Stats struct {
	// BinariesChecked is the number of exact histogram tests.
	BinariesChecked int
	// EditedWalked is the number of edited images whose sequences were
	// evaluated with the rule engine.
	EditedWalked int
	// OpsEvaluated is the total number of operation rules applied.
	OpsEvaluated int
	// EditedSkipped counts edited images admitted without rule evaluation
	// (always zero for RBM; BWM reuses this type).
	EditedSkipped int
}

// Add folds another execution's counters into s. The parallel walk keeps
// one Stats per worker and merges them with Add, so totals are independent
// of scheduling.
func (s *Stats) Add(o Stats) {
	s.BinariesChecked += o.BinariesChecked
	s.EditedWalked += o.EditedWalked
	s.OpsEvaluated += o.OpsEvaluated
	s.EditedSkipped += o.EditedSkipped
}

// Result is a query answer: matching object ids in ascending order plus
// execution statistics.
type Result struct {
	IDs   []uint64
	Stats Stats
}

// Processor executes RBM queries over a catalog with a rule engine.
type Processor struct {
	Cat    *catalog.Catalog
	Engine *rules.Engine
	// Parallel, when non-nil, supplies the candidate-evaluation
	// parallelism knob (0 = auto, 1 = serial); nil keeps the walk serial.
	// It is a callback so the owning database can retune a live processor.
	Parallel func() int
	// Prune, when non-nil, is consulted before each edited image's BOUNDS
	// walk: returning true asserts the image cannot match the query (the
	// segmented store proves it from per-segment bound sketches) and skips
	// the rule evaluation entirely. The hook must be conservative — it may
	// only reject images whose bound range provably misses [PctMin,
	// PctMax] — so results stay identical to the unhooked walk.
	Prune func(q query.Range, id uint64) bool
}

// workers resolves the processor's parallelism for one query.
func (p *Processor) workers() int {
	if p.Parallel == nil {
		return 1
	}
	return exec.Resolve(p.Parallel())
}

// New returns an RBM processor.
func New(cat *catalog.Catalog, engine *rules.Engine) *Processor {
	return &Processor{Cat: cat, Engine: engine}
}

// Range answers a color range query with the §3 algorithm: exact test for
// every binary image, full BOUNDS walk for every edited image.
func (p *Processor) Range(q query.Range) (*Result, error) {
	return p.RangeTraced(q, nil)
}

// RangeTraced is Range with per-phase timings and decision counts recorded
// into tr (nil disables tracing at no cost).
func (p *Processor) RangeTraced(q query.Range, tr *obs.Trace) (*Result, error) {
	return p.RangeTracedCtx(context.Background(), q, tr)
}

// RangeTracedCtx is RangeTraced with the caller's ctx propagated into the
// candidate-evaluation worker pool, so cancelling the query stops the
// edited walk.
func (p *Processor) RangeTracedCtx(ctx context.Context, q query.Range, tr *obs.Trace) (*Result, error) {
	if err := q.Validate(p.Engine.Quant.Bins()); err != nil {
		return nil, err
	}
	res := &Result{}
	done := tr.Phase("rbm.scan-binaries")
	for _, id := range p.Cat.Binaries() {
		obj, err := p.Cat.Binary(id)
		if errors.Is(err, catalog.ErrNotFound) {
			continue // deleted since the id list was taken
		}
		if err != nil {
			return nil, err
		}
		res.Stats.BinariesChecked++
		if q.MatchesExact(obj.Hist) {
			res.IDs = append(res.IDs, id)
			tr.Count(obs.TBaseMatches, 1)
		}
	}
	done()
	// The edited walk shards across the worker pool: verdicts are slotted
	// by candidate index and statistics kept per worker, so the merged
	// result is identical to the serial loop at any parallelism.
	done = tr.Phase("rbm.walk-edited")
	workers := p.workers()
	stats := make([]Stats, workers)
	matched, pst, err := exec.FilterIDs(ctx, workers, p.Cat.EditedIDs(), func(w int, id uint64) (bool, error) {
		return p.CheckEdited(id, q, &stats[w], tr)
	})
	if pst.Workers > 1 {
		pst.Record(tr)
	}
	if err != nil {
		return nil, err
	}
	res.IDs = append(res.IDs, matched...)
	for i := range stats {
		res.Stats.Add(stats[i])
	}
	done()
	sortIDs(res.IDs)
	return res, nil
}

// CheckEdited runs the BOUNDS walk for one edited image and reports whether
// its bound range overlaps the query range. It is exported because BWM's
// algorithm (paper Fig. 2, steps 4.3 and 5) invokes exactly this procedure
// for cluster members whose base failed the query and for the Unclassified
// Component. tr may be nil.
func (p *Processor) CheckEdited(id uint64, q query.Range, st *Stats, tr *obs.Trace) (bool, error) {
	if p.Prune != nil {
		tr.Count(obs.TSegmentSketchChecks, 1)
		if p.Prune(q, id) {
			tr.Count(obs.TSegmentSkipped, 1)
			return false, nil
		}
	}
	obj, err := p.Cat.Edited(id)
	if errors.Is(err, catalog.ErrNotFound) {
		return false, nil // deleted since the id was listed
	}
	if err != nil {
		return false, err
	}
	base, err := p.Cat.Binary(obj.Seq.BaseID)
	if errors.Is(err, catalog.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("rbm: edited %d: %w", id, err)
	}
	st.EditedWalked++
	st.OpsEvaluated += len(obj.Seq.Ops)
	CountRuleWalk(obj.Seq.Ops, tr)
	b, err := p.Engine.BoundsForBin(base.Hist, base.W, base.H, obj.Seq.Ops, q.Bin)
	if err != nil {
		return false, fmt.Errorf("rbm: edited %d: %w", id, err)
	}
	return b.Overlaps(q.PctMin, q.PctMax), nil
}

// CountRuleWalk records one edited image's rule walk into the process
// registry (per-op-type rule counters) and the trace. Exported so every
// call site that evaluates BOUNDS rules outside CheckEdited (multi-bin
// queries, k-NN bounds, the cache-miss path) reports through the same
// counters.
func CountRuleWalk(ops []editops.Op, tr *obs.Trace) {
	mEditedWalked.Inc()
	var byKind [editops.KindMerge + 1]int64
	for _, op := range ops {
		if k := op.Kind(); k >= editops.KindDefine && k <= editops.KindMerge {
			byKind[k]++
		}
	}
	for k, n := range byKind {
		if n > 0 {
			mRulesByKind[k].Add(n)
		}
	}
	tr.Count(obs.TEditedWalked, 1)
	tr.Count(obs.TRulesEvaluated, int64(len(ops)))
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
