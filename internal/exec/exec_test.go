package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(1); got != 1 {
		t.Fatalf("Resolve(1) = %d", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d", got)
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 137
		var mu sync.Mutex
		seen := make(map[int]int, n)
		st, err := ForEach(context.Background(), workers, n, func(w, i int) error {
			if w < 0 || w >= workers {
				t.Errorf("worker index %d outside [0,%d)", w, workers)
			}
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Tasks != n {
			t.Fatalf("workers=%d: %d tasks, want %d", workers, st.Tasks, n)
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: covered %d indices, want %d", workers, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d evaluated %d times", workers, i, c)
			}
		}
		if workers > n && st.Workers > n {
			t.Fatalf("workers not clamped: %d for n=%d", st.Workers, n)
		}
	}
}

func TestForEachZeroAndOneItems(t *testing.T) {
	st, err := ForEach(context.Background(), 8, 0, func(w, i int) error { return nil })
	if err != nil || st.Tasks != 0 {
		t.Fatalf("n=0: stats %+v err %v", st, err)
	}
	var ran atomic.Int64
	st, err = ForEach(context.Background(), 8, 1, func(w, i int) error {
		ran.Add(1)
		return nil
	})
	if err != nil || st.Tasks != 1 || ran.Load() != 1 {
		t.Fatalf("n=1: stats %+v err %v ran %d", st, err, ran.Load())
	}
	if st.Workers != 1 {
		t.Fatalf("n=1 should run serially, got %d workers", st.Workers)
	}
}

func TestForEachErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	st, err := ForEach(context.Background(), 4, 10_000, func(w, i int) error {
		if i == 17 {
			return boom
		}
		after.Add(1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !st.Canceled {
		t.Fatal("stats should mark the run canceled")
	}
	if after.Load() >= 10_000 {
		t.Fatal("cancellation did not stop the remaining work")
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	started := make(chan struct{}, 1)
	stVal := make(chan Stats, 1)
	errVal := make(chan error, 1)
	go func() {
		st, err := ForEach(ctx, 2, 1_000_000, func(w, i int) error {
			select {
			case started <- struct{}{}:
			default:
			}
			ran.Add(1)
			return nil
		})
		stVal <- st
		errVal <- err
	}()
	<-started
	cancel()
	st, err := <-stVal, <-errVal
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !st.Canceled {
		t.Fatal("stats should mark the run canceled")
	}
	if ran.Load() >= 1_000_000 {
		t.Fatal("cancellation did not stop the remaining work")
	}
}

func TestFilterIDsPreservesOrder(t *testing.T) {
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = uint64(1000 + i)
	}
	pred := func(w int, id uint64) (bool, error) { return id%3 == 0, nil }
	serial, _, err := FilterIDs(context.Background(), 1, ids, pred)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, _, err := FilterIDs(context.Background(), workers, ids, pred)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d ids, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: id[%d] = %d, want %d", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestStatsRecord(t *testing.T) {
	tr := obs.NewTrace()
	Stats{Workers: 4, Tasks: 100, Steals: 7, Canceled: true}.Record(tr)
	if got := tr.Get(obs.TParallelWorkers); got != 4 {
		t.Fatalf("workers counter %d", got)
	}
	if got := tr.Get(obs.TParallelTasks); got != 100 {
		t.Fatalf("tasks counter %d", got)
	}
	if got := tr.Get(obs.TParallelSteals); got != 7 {
		t.Fatalf("steals counter %d", got)
	}
	if got := tr.Get(obs.TParallelCancels); got != 1 {
		t.Fatalf("cancels counter %d", got)
	}
	// Record is nil-safe like the rest of the trace API.
	Stats{Workers: 1}.Record(nil)
}

func TestScatterCollectsPerIndexErrors(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	errs, st := Scatter(context.Background(), 4, 6, func(i int) error {
		ran.Add(1)
		if i%2 == 1 {
			return boom
		}
		return nil
	})
	if ran.Load() != 6 {
		t.Fatalf("ran %d of 6 tasks; Scatter must attempt all", ran.Load())
	}
	if st.Canceled {
		t.Fatal("errors must not cancel the scatter")
	}
	for i, err := range errs {
		if i%2 == 1 && !errors.Is(err, boom) {
			t.Fatalf("errs[%d] = %v, want boom", i, err)
		}
		if i%2 == 0 && err != nil {
			t.Fatalf("errs[%d] = %v, want nil", i, err)
		}
	}
}

func TestScatterCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs, _ := Scatter(ctx, 2, 4, func(i int) error { return nil })
	missing := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("canceled scatter must mark unattempted indexes with ctx error")
	}
}

func TestScatterSerial(t *testing.T) {
	var order []int
	errs, _ := Scatter(context.Background(), 1, 3, func(i int) error {
		order = append(order, i)
		return nil
	})
	if len(errs) != 3 {
		t.Fatalf("errs len %d", len(errs))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial scatter ran out of order: %v", order)
		}
	}
}
