// Package exec is the query engine's bounded worker pool: candidate id
// sets are sharded across GOMAXPROCS-scaled workers and evaluated
// concurrently, with deterministic merging left to the caller (results are
// slotted by input index, so concatenation reproduces the serial order).
//
// Scheduling is chunked work-claiming: a shared atomic cursor hands out
// fixed-size index chunks, so a worker that finishes its claim early
// "steals" the next chunk instead of idling — cheap dynamic load balancing
// without per-item contention. The first error cancels the run through a
// derived context.Context; callers can also pass their own context to stop
// a run early (the kNN path threads one for top-k work).
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide pool behaviour, exported through the /metrics registry.
var (
	mRuns    = obs.Default().Counter("esidb_parallel_runs_total")
	mTasks   = obs.Default().Counter("esidb_parallel_tasks_total")
	mSteals  = obs.Default().Counter("esidb_parallel_steals_total")
	mCancels = obs.Default().Counter("esidb_parallel_cancels_total")
)

// chunksPerWorker sizes the claim granularity: each worker's fair share is
// split this many ways, so the tail of a skewed workload rebalances without
// making the cursor a hot spot.
const chunksPerWorker = 4

// Resolve maps the Parallelism knob to a worker count: 0 (auto) becomes
// GOMAXPROCS, 1 is serial, anything larger is used as given.
func Resolve(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Stats describes one ForEach run.
type Stats struct {
	// Workers is the number of goroutines the run actually used (after
	// clamping to the task count).
	Workers int
	// Tasks is how many items completed evaluation.
	Tasks int64
	// Steals counts chunk claims beyond each worker's first — how often a
	// worker that drained its claim picked up more work.
	Steals int64
	// Canceled reports that the run stopped early (context or error).
	Canceled bool
}

// Record folds the run's counters into a query trace (nil-safe). Callers
// record only genuinely parallel runs so serial traces stay unchanged.
func (s Stats) Record(tr *obs.Trace) {
	tr.Count(obs.TParallelWorkers, int64(s.Workers))
	tr.Count(obs.TParallelTasks, s.Tasks)
	tr.Count(obs.TParallelSteals, s.Steals)
	if s.Canceled {
		tr.Count(obs.TParallelCancels, 1)
	}
}

// ForEach evaluates fn(worker, i) for every i in [0, n) on up to workers
// goroutines. fn receives the worker's index (0 ≤ worker < workers) so
// callers can keep per-worker accumulators and merge them deterministically
// afterwards. The first error cancels the remaining work and is returned;
// cancellation of ctx does the same with ctx's error. With workers ≤ 1 (or
// n ≤ 1) the items run inline on the calling goroutine in index order —
// byte-for-byte the serial behaviour.
func ForEach(ctx context.Context, workers, n int, fn func(worker, i int) error) (Stats, error) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return forEachSerial(ctx, n, fn)
	}
	mRuns.Inc()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	chunk := n / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var (
		cursor, tasks, steals atomic.Int64
		errOnce               sync.Once
		firstErr              error
		wg                    sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for claims := 0; ; claims++ {
				if ctx.Err() != nil {
					return
				}
				lo := cursor.Add(int64(chunk)) - int64(chunk)
				if lo >= int64(n) {
					return
				}
				if claims > 0 {
					steals.Add(1)
				}
				hi := lo + int64(chunk)
				if hi > int64(n) {
					hi = int64(n)
				}
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					if err := fn(w, int(i)); err != nil {
						fail(err)
						return
					}
					tasks.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	st := Stats{Workers: workers, Tasks: tasks.Load(), Steals: steals.Load()}
	mTasks.Add(st.Tasks)
	mSteals.Add(st.Steals)
	if firstErr == nil {
		// No task failed; the only way the derived context is done here is
		// that the parent was canceled.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		st.Canceled = true
		mCancels.Inc()
	}
	return st, firstErr
}

// forEachSerial is the workers ≤ 1 path: identical to the pre-parallel
// query loops, plus context cancellation between items.
func forEachSerial(ctx context.Context, n int, fn func(worker, i int) error) (Stats, error) {
	st := Stats{Workers: 1}
	if n < 0 {
		n = 0
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			st.Canceled = true
			mCancels.Inc()
			return st, err
		}
		if err := fn(0, i); err != nil {
			st.Canceled = true
			mCancels.Inc()
			return st, err
		}
		st.Tasks++
	}
	return st, nil
}

// Scatter evaluates fn(i) for every i in [0, n) concurrently and collects
// a per-index error slice instead of stopping at the first failure — the
// fan-out shape a scatter-gather coordinator needs, where one failed shard
// must not cancel its siblings. Only cancellation of ctx aborts the run;
// indexes that never got to run are then marked with the context's error
// so callers can tell "failed" from "not attempted but skipped".
func Scatter(ctx context.Context, workers, n int, fn func(i int) error) ([]error, Stats) {
	errs := make([]error, n)
	ran := make([]bool, n)
	st, err := ForEach(ctx, workers, n, func(_, i int) error {
		ran[i] = true
		errs[i] = fn(i)
		return nil
	})
	if err != nil {
		for i := range errs {
			if !ran[i] {
				errs[i] = err
			}
		}
	}
	return errs, st
}

// FilterIDs evaluates pred over every id concurrently and returns the ids
// that passed, preserving input order — the shape of every range-query
// candidate walk. Per-item verdicts land in an index-slotted array, so the
// merged output is identical to a serial scan regardless of completion
// order.
func FilterIDs(ctx context.Context, workers int, ids []uint64, pred func(worker int, id uint64) (bool, error)) ([]uint64, Stats, error) {
	hits := make([]bool, len(ids))
	st, err := ForEach(ctx, workers, len(ids), func(w, i int) error {
		ok, perr := pred(w, ids[i])
		if perr != nil {
			return perr
		}
		hits[i] = ok
		return nil
	})
	if err != nil {
		return nil, st, err
	}
	var out []uint64
	for i, ok := range hits {
		if ok {
			out = append(out, ids[i])
		}
	}
	return out, st, nil
}
