package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	mmdb "repro"
	"repro/internal/catalog"
)

// RebalanceReport summarizes a completed rebalance.
type RebalanceReport struct {
	// Moves are the base-clusters that changed home shard.
	Moves []Move
	// BinariesMoved and EditedMoved count objects copied to new homes
	// (replicated merge targets excluded).
	BinariesMoved int
	EditedMoved   int
	// ReplicasCreated counts merge-target replicas materialized on
	// destination shards.
	ReplicasCreated int
	// ReplicasLeft counts source-side binaries that could not be deleted
	// because sequences staying behind reference them as merge targets —
	// they were demoted to reference replicas rather than removed.
	ReplicasLeft int
}

// AddShard grows the cluster by one shard and rebalances the base-clusters
// the new ring assigns to it. The shard map is extended with info and sh
// becomes its transport.
func (c *Coordinator) AddShard(ctx context.Context, info ShardInfo, sh Shard) (*RebalanceReport, error) {
	c.mu.RLock()
	old := c.smap
	c.mu.RUnlock()
	return c.Rebalance(ctx, old.WithShard(info), map[string]Shard{info.ID: sh})
}

// Rebalance moves the cluster from its current shard map to newMap,
// streaming whole base-clusters (base + its edited derivatives, plus any
// merge-target replicas they need) to their new home shards. added supplies
// transports for shard ids new in newMap; existing shards keep theirs.
//
// The sequence is copy → swap ring → delete: queries keep answering from
// the old homes while data streams, the ring swap is atomic, and only then
// are the moved objects removed from their old shards. Until the deletes
// finish, a moved object exists on two shards — the same window a
// merge-target replica always occupies — and the union dedup keeps query
// answers exact through it. Inserts are held off for the duration so id
// routing cannot race the swap. Every shard must be reachable; a rebalance
// with part of the cluster invisible would lose data.
func (c *Coordinator) Rebalance(ctx context.Context, newMap *ShardMap, added map[string]Shard) (*RebalanceReport, error) {
	newRing, err := NewRing(newMap)
	if err != nil {
		return nil, err
	}

	c.insertMu.Lock()
	defer c.insertMu.Unlock()

	c.mu.RLock()
	oldRing := c.ring
	oldConns := c.byID
	c.mu.RUnlock()

	// Assemble the post-rebalance connection set up front so a missing
	// transport aborts before any data moves.
	newByID := make(map[string]*shardConn, len(newMap.Shards))
	newConns := make([]*shardConn, 0, len(newMap.Shards))
	for _, info := range newMap.Shards {
		cc := oldConns[info.ID]
		if cc == nil {
			sh, ok := added[info.ID]
			if !ok || sh == nil {
				return nil, fmt.Errorf("cluster: no transport for new shard %q", info.ID)
			}
			cc = newShardConn(sh)
		}
		newByID[info.ID] = cc
		newConns = append(newConns, cc)
	}

	// Full inventory: every shard lists its objects. Replicas show up on
	// non-home shards; routing below always consults the ring, so they are
	// never mistaken for movable bases.
	type homed struct {
		meta  ObjectMeta
		shard string
	}
	var binaries, edited []homed
	for id, cc := range oldConns {
		metas, err := callShard(ctx, c.pol, true, func(actx context.Context) ([]ObjectMeta, error) {
			return cc.shard.List(actx)
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: rebalance inventory on shard %s: %w", id, err)
		}
		for _, m := range metas {
			switch m.Kind {
			case "binary":
				if oldRing.ShardFor(RouteKey(m.ID, 0)) == id {
					binaries = append(binaries, homed{m, id})
				}
			default:
				edited = append(edited, homed{m, id})
			}
		}
	}

	bases := make([]uint64, 0, len(binaries))
	for _, b := range binaries {
		bases = append(bases, b.meta.ID)
	}
	moves := PlanMoves(oldRing, newRing, bases)
	rep := &RebalanceReport{Moves: moves}
	moveTo := make(map[uint64]string, len(moves))
	for _, mv := range moves {
		moveTo[mv.Base] = mv.To
	}

	// Copy phase: stream each moving base-cluster to its new home. Sources
	// keep serving until the swap, so order does not matter.
	for _, b := range binaries {
		to, moving := moveTo[b.meta.ID]
		if !moving {
			continue
		}
		src, dst := oldConns[b.shard], newByID[to]
		if err := c.copyBinary(ctx, src, dst, b.meta); err != nil {
			return nil, err
		}
		rep.BinariesMoved++
	}
	for _, e := range edited {
		to, moving := moveTo[e.meta.BaseID]
		if !moving {
			continue
		}
		src, dst := oldConns[e.shard], newByID[to]
		n, err := c.copyEdited(ctx, src, dst, e.meta)
		if err != nil {
			return nil, err
		}
		rep.ReplicasCreated += n
		rep.EditedMoved++
	}

	// Swap: from here on the ring routes to the new homes.
	c.mu.Lock()
	c.smap, c.ring, c.conns, c.byID = newMap, newRing, newConns, newByID
	c.mu.Unlock()

	// Delete phase: remove moved objects from their old shards, children
	// before bases so base deletes see no dangling references. A base still
	// referenced by sequences that stayed behind (as their merge target)
	// reports ErrInUse and is left in place as a reference replica.
	for _, e := range edited {
		if _, moving := moveTo[e.meta.BaseID]; !moving {
			continue
		}
		src := oldConns[e.shard]
		if err := c.deleteMoved(ctx, src, e.meta.ID); err != nil {
			return nil, err
		}
	}
	for _, b := range binaries {
		if _, moving := moveTo[b.meta.ID]; !moving {
			continue
		}
		src := oldConns[b.shard]
		err := c.deleteMoved(ctx, src, b.meta.ID)
		if errors.Is(err, catalog.ErrInUse) {
			rep.ReplicasLeft++
			continue
		}
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(rep.Moves, func(i, j int) bool { return rep.Moves[i].Base < rep.Moves[j].Base })
	return rep, nil
}

// copyBinary materializes a binary on dst under its existing id. Already
// present (dst held it as a replica) is success.
func (c *Coordinator) copyBinary(ctx context.Context, src, dst *shardConn, meta ObjectMeta) error {
	has, err := callShard(ctx, c.pol, true, func(actx context.Context) (bool, error) {
		return dst.shard.HasObject(actx, meta.ID)
	})
	if err != nil {
		return err
	}
	if has {
		return nil
	}
	img, err := callShard(ctx, c.pol, true, func(actx context.Context) (*mmdb.Image, error) {
		return src.shard.Image(actx, meta.ID)
	})
	if err != nil {
		return fmt.Errorf("cluster: read binary %d from %s: %w", meta.ID, src.shard.ID(), err)
	}
	_, err = callShard(ctx, c.pol, false, func(actx context.Context) (struct{}, error) {
		return struct{}{}, dst.shard.InsertImage(actx, meta.ID, meta.Name, img)
	})
	if err != nil {
		return fmt.Errorf("cluster: copy binary %d to %s: %w", meta.ID, dst.shard.ID(), err)
	}
	return nil
}

// copyEdited moves one edited object: its merge targets are replicated to
// dst first (returning how many were created), then the sequence itself is
// inserted under its existing id.
func (c *Coordinator) copyEdited(ctx context.Context, src, dst *shardConn, meta ObjectMeta) (int, error) {
	has, err := callShard(ctx, c.pol, true, func(actx context.Context) (bool, error) {
		return dst.shard.HasObject(actx, meta.ID)
	})
	if err != nil {
		return 0, err
	}
	if has {
		return 0, nil
	}
	_, seq, err := callShard2(ctx, c.pol, true, func(actx context.Context) (*ObjectMeta, *mmdb.Sequence, error) {
		return src.shard.Object(actx, meta.ID)
	})
	if err != nil {
		return 0, fmt.Errorf("cluster: read edited %d from %s: %w", meta.ID, src.shard.ID(), err)
	}
	if seq == nil {
		return 0, fmt.Errorf("cluster: edited %d on %s has no sequence", meta.ID, src.shard.ID())
	}
	created := 0
	for _, t := range seq.MergeTargets() {
		has, err := callShard(ctx, c.pol, true, func(actx context.Context) (bool, error) {
			return dst.shard.HasObject(actx, t)
		})
		if err != nil {
			return created, err
		}
		if has {
			continue
		}
		tMeta, _, err := callShard2(ctx, c.pol, true, func(actx context.Context) (*ObjectMeta, *mmdb.Sequence, error) {
			return src.shard.Object(actx, t)
		})
		if err != nil {
			return created, fmt.Errorf("cluster: read merge target %d from %s: %w", t, src.shard.ID(), err)
		}
		if err := c.copyBinary(ctx, src, dst, *tMeta); err != nil {
			return created, err
		}
		created++
	}
	_, err = callShard(ctx, c.pol, false, func(actx context.Context) (struct{}, error) {
		return struct{}{}, dst.shard.InsertSequence(actx, meta.ID, meta.Name, seq)
	})
	if err != nil {
		return created, fmt.Errorf("cluster: copy edited %d to %s: %w", meta.ID, dst.shard.ID(), err)
	}
	return created, nil
}

func (c *Coordinator) deleteMoved(ctx context.Context, src *shardConn, id uint64) error {
	_, err := callShard(ctx, c.pol, false, func(actx context.Context) (struct{}, error) {
		return struct{}{}, src.shard.Delete(actx, id)
	})
	return err
}
