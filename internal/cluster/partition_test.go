package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	mmdb "repro"
)

func testMap(n int) *ShardMap {
	m := &ShardMap{}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, ShardInfo{ID: fmt.Sprintf("s%d", i)})
	}
	return m
}

func TestShardMapValidate(t *testing.T) {
	if err := (&ShardMap{}).Validate(); err == nil {
		t.Fatal("empty map must not validate")
	}
	if err := (&ShardMap{Shards: []ShardInfo{{ID: ""}}}).Validate(); err == nil {
		t.Fatal("empty shard id must not validate")
	}
	if err := (&ShardMap{Shards: []ShardInfo{{ID: "a"}, {ID: "a"}}}).Validate(); err == nil {
		t.Fatal("duplicate shard id must not validate")
	}
	if err := testMap(3).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShardMapSaveLoad(t *testing.T) {
	m := testMap(3)
	m.VNodes = 16
	m.Shards[1].Addr = "http://127.0.0.1:7702"
	path := filepath.Join(t.TempDir(), "map.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShardMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	if _, err := LoadShardMap(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestRingDeterministic: two rings from equal maps agree everywhere —
// the property that lets independent coordinators route identically.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(testMap(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(testMap(4))
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 500; id++ {
		if a.ShardFor(id) != b.ShardFor(id) {
			t.Fatalf("rings disagree on id %d", id)
		}
	}
}

// TestRingBalance: with default vnodes every shard owns a nontrivial share
// of keys. Not a tight bound — just a guard against a degenerate ring.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(testMap(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 2000
	for id := uint64(1); id <= n; id++ {
		counts[r.ShardFor(id)]++
	}
	for shard, got := range counts {
		if got < n/16 {
			t.Fatalf("shard %s owns only %d/%d keys", shard, got, n)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d shards own keys", len(counts))
	}
}

func TestRouteKey(t *testing.T) {
	if RouteKey(7, 0) != 7 {
		t.Fatal("binary routes by its own id")
	}
	if RouteKey(7, 3) != 3 {
		t.Fatal("edited routes by its base id")
	}
}

// TestPlanMoves: growing the cluster only moves bases *to* the new shard,
// and moves a minority of them — the consistent-hashing contract.
func TestPlanMoves(t *testing.T) {
	oldRing, err := NewRing(testMap(3))
	if err != nil {
		t.Fatal(err)
	}
	newRing, err := NewRing(testMap(4))
	if err != nil {
		t.Fatal(err)
	}
	var bases []uint64
	for id := uint64(1); id <= 400; id++ {
		bases = append(bases, id)
	}
	moves := PlanMoves(oldRing, newRing, bases)
	if len(moves) == 0 {
		t.Fatal("adding a shard must move something")
	}
	if len(moves) >= len(bases)/2 {
		t.Fatalf("moved %d of %d bases; consistent hashing should move ~1/4", len(moves), len(bases))
	}
	for i, mv := range moves {
		if mv.To != "s3" {
			t.Fatalf("move %+v targets an old shard", mv)
		}
		if newRing.ShardFor(mv.Base) != mv.To || oldRing.ShardFor(mv.Base) != mv.From {
			t.Fatalf("move %+v disagrees with the rings", mv)
		}
		if i > 0 && moves[i-1].Base >= mv.Base {
			t.Fatal("moves must be sorted by base id")
		}
	}
}

// TestAddShardRebalance is the end-to-end grow test: seed a 2-shard
// cluster, add a third, and check the moved data answers identically,
// base-affinity holds on the new layout, and moved objects left their old
// homes (except merge-target replicas).
func TestAddShardRebalance(t *testing.T) {
	c := makeCorpus(12, 2, 31)
	single := c.seedSingle(t)
	coord, procs := newInProcCluster(t, 2)
	c.seedCluster(t, coord)
	ctx := context.Background()

	db, err := mmdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	newProc := NewInProc("s2", db)
	rep, err := coord.AddShard(ctx, ShardInfo{ID: "s2"}, newProc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) == 0 || rep.BinariesMoved == 0 {
		t.Fatalf("expected data to move to the new shard: %+v", rep)
	}
	for _, mv := range rep.Moves {
		if mv.To != "s2" {
			t.Fatalf("move %+v targets an old shard", mv)
		}
	}
	if got := coord.ShardIDs(); !reflect.DeepEqual(got, []string{"s0", "s1", "s2"}) {
		t.Fatalf("shard ids after grow: %v", got)
	}

	// Parity after the rebalance, across query families.
	want, err := single.QueryCompound("at least 5% red and at most 95% green", mmdb.ModeBWM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Query(ctx, "at least 5% red and at most 95% green", "bwm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || !reflect.DeepEqual(got.IDs, want.IDs) {
		t.Fatalf("post-rebalance %v != single %v", got.IDs, want.IDs)
	}
	wantKNN, _, err := single.QueryByExample(c.flags[3].Img, 6, mmdb.MetricL2)
	if err != nil {
		t.Fatal(err)
	}
	gotKNN, err := coord.Similar(ctx, c.flags[3].Img, 6, "l2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotKNN.Matches, wantKNN) {
		t.Fatalf("post-rebalance knn %v != single %v", gotKNN.Matches, wantKNN)
	}

	// Base-affinity on the new ring: every edited is homed with its base.
	ring, _ := coord.snapshot()
	allProcs := append(append([]*InProc{}, procs...), newProc)
	for _, p := range allProcs {
		metas, err := p.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range metas {
			if m.Kind != "edited" {
				continue
			}
			if home := ring.ShardFor(RouteKey(m.ID, m.BaseID)); home != p.ID() {
				t.Fatalf("edited %d (base %d) on %s after rebalance, home is %s", m.ID, m.BaseID, p.ID(), home)
			}
		}
	}

	// Moved bases are gone from their old homes unless demoted to replicas,
	// which the report accounts for.
	left := 0
	for _, mv := range rep.Moves {
		for _, p := range procs {
			if p.ID() != mv.From {
				continue
			}
			has, err := p.HasObject(ctx, mv.Base)
			if err != nil {
				t.Fatal(err)
			}
			if has {
				left++
			}
		}
	}
	if left != rep.ReplicasLeft {
		t.Fatalf("%d moved bases remain on old shards, report says %d replicas left", left, rep.ReplicasLeft)
	}

	// The grown cluster keeps inserting with the global id sequence.
	id, home, err := coord.InsertImage(ctx, "post-grow", c.flags[0].Img)
	if err != nil {
		t.Fatal(err)
	}
	if ring.ShardFor(id) != home {
		t.Fatalf("insert landed on %s, ring says %s", home, ring.ShardFor(id))
	}
}
