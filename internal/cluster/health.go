package cluster

import (
	"context"
	"sort"
	"sync/atomic"
	"time"
)

// State is a shard's health as the coordinator sees it.
type State int32

const (
	// StateUp: last probe (or query) succeeded.
	StateUp State = iota
	// StateSuspect: recent failures, but not enough to write the shard off;
	// it is still queried.
	StateSuspect
	// StateDown: failures past the threshold. While the health loop is
	// running, queries skip Down shards outright (they count as missed
	// without burning the retry budget); the loop keeps probing so a
	// revived shard comes back automatically.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// gaugeValue is what the esidb_cluster_shard_up gauge publishes: 1 up,
// 0.5 suspect, 0 down.
func (s State) gaugeValue() float64 {
	switch s {
	case StateUp:
		return 1
	case StateSuspect:
		return 0.5
	default:
		return 0
	}
}

// Consecutive-failure thresholds: one failure makes a shard suspect,
// three make it down.
const (
	suspectAfter = 1
	downAfter    = 3
)

// stateMachine tracks consecutive failures and derives the health state.
// It is written from query goroutines and the health loop concurrently,
// so everything is atomic.
type stateMachine struct {
	fails atomic.Int32
	state atomic.Int32
}

func newStateMachine() *stateMachine { return &stateMachine{} }

func (m *stateMachine) current() State { return State(m.state.Load()) }

func (m *stateMachine) success() {
	m.fails.Store(0)
	m.state.Store(int32(StateUp))
}

func (m *stateMachine) failure() {
	n := m.fails.Add(1)
	switch {
	case n >= downAfter:
		m.state.Store(int32(StateDown))
	case n >= suspectAfter:
		m.state.Store(int32(StateSuspect))
	}
}

func (c *shardConn) noteSuccess() {
	c.state.success()
	c.publish()
}

func (c *shardConn) noteFailure() {
	c.state.failure()
	c.publish()
}

func (c *shardConn) publish() {
	c.up.Set(c.state.current().gaugeValue())
}

// healthState is the coordinator-wide flag: Down-shard skipping only
// activates once a health loop is probing, so a coordinator without one
// can never permanently write a shard off.
type healthState struct{ on atomic.Bool }

func newHealthState() *healthState      { return &healthState{} }
func (h *healthState) active() bool     { return h.on.Load() }
func (h *healthState) setActive(v bool) { h.on.Store(v) }

// nowFunc is stubbed in tests.
var nowFunc = time.Now

// Health reports every shard's current state, keyed by shard id.
func (c *Coordinator) Health() map[string]State {
	_, conns := c.snapshot()
	out := make(map[string]State, len(conns))
	for _, cc := range conns {
		out[cc.shard.ID()] = cc.state.current()
	}
	return out
}

// CheckNow pings every shard once (concurrently) and folds the outcomes
// into their health states. It returns the post-probe states.
func (c *Coordinator) CheckNow(ctx context.Context) map[string]State {
	_, conns := c.snapshot()
	done := make(chan struct{})
	for _, cc := range conns {
		go func(cc *shardConn) {
			defer func() { done <- struct{}{} }()
			pctx, cancel := context.WithTimeout(ctx, c.pol.Timeout)
			defer cancel()
			if err := cc.shard.Ping(pctx); err != nil {
				cc.noteFailure()
			} else {
				cc.noteSuccess()
			}
		}(cc)
	}
	for range conns {
		<-done
	}
	return c.Health()
}

// StartHealth runs the background checker: an immediate probe, then one
// every interval until ctx is canceled. While it runs, queries skip Down
// shards (reported as missed). Call it once per coordinator.
func (c *Coordinator) StartHealth(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	c.health.setActive(true)
	c.CheckNow(ctx)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				c.health.setActive(false)
				return
			case <-t.C:
				c.CheckNow(ctx)
			}
		}
	}()
}

// DownShards lists shards currently considered down, sorted.
func (c *Coordinator) DownShards() []string {
	var out []string
	for id, st := range c.Health() {
		if st == StateDown {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
