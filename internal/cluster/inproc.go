package cluster

import (
	"context"
	"errors"
	"sync/atomic"

	mmdb "repro"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/store"
)

// InProc is the embedded transport: the shard is a *mmdb.DB in this
// process. It backs single-binary cluster deployments, the coordinator
// tests and bench.CompareCluster. Calls are synchronous; the context is
// honored at call boundaries (an embedded query is not interruptible
// mid-walk, same as single-node).
type InProc struct {
	id     string
	db     *mmdb.DB
	killed atomic.Bool
}

// NewInProc wraps db as the shard named id.
func NewInProc(id string, db *mmdb.DB) *InProc {
	return &InProc{id: id, db: db}
}

// DB exposes the embedded database (bench harnesses seed shards directly).
func (s *InProc) DB() *mmdb.DB { return s.db }

// Kill marks the shard dead: every subsequent call fails with
// store.ErrClosed, exactly how a closed database presents. Tests use it to
// exercise degraded mode without tearing down real processes.
func (s *InProc) Kill() { s.killed.Store(true) }

// Revive undoes Kill (health-recovery tests).
func (s *InProc) Revive() { s.killed.Store(false) }

func (s *InProc) check(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.killed.Load() {
		return store.ErrClosed
	}
	return nil
}

// ID implements Shard.
func (s *InProc) ID() string { return s.id }

// Ping implements Shard.
func (s *InProc) Ping(ctx context.Context) error {
	if err := s.check(ctx); err != nil {
		return err
	}
	_, err := s.db.Stats()
	return err
}

// InsertImage implements Shard.
func (s *InProc) InsertImage(ctx context.Context, id uint64, name string, img *mmdb.Image) error {
	if err := s.check(ctx); err != nil {
		return err
	}
	_, err := s.db.InsertImageCtx(ctx, name, img, mmdb.WithID(id), mmdb.WithNoAugment())
	return markQueryError(err)
}

// InsertSequence implements Shard.
func (s *InProc) InsertSequence(ctx context.Context, id uint64, name string, seq *mmdb.Sequence) error {
	if err := s.check(ctx); err != nil {
		return err
	}
	_, err := s.db.InsertEditedCtx(ctx, name, seq, mmdb.WithID(id))
	return markQueryError(err)
}

// HasObject implements Shard.
func (s *InProc) HasObject(ctx context.Context, id uint64) (bool, error) {
	if err := s.check(ctx); err != nil {
		return false, err
	}
	_, err := s.db.Get(id)
	if errors.Is(err, catalog.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, markQueryError(err)
	}
	return true, nil
}

// Object implements Shard.
func (s *InProc) Object(ctx context.Context, id uint64) (*ObjectMeta, *mmdb.Sequence, error) {
	if err := s.check(ctx); err != nil {
		return nil, nil, err
	}
	obj, err := s.db.Get(id)
	if err != nil {
		return nil, nil, markQueryError(err)
	}
	meta := &ObjectMeta{ID: obj.ID, Kind: obj.Kind.String(), Name: obj.Name}
	var seq *mmdb.Sequence
	if obj.Kind == mmdb.KindEdited {
		meta.BaseID = obj.Seq.BaseID
		seq = obj.Seq.Clone()
	}
	return meta, seq, nil
}

// Image implements Shard.
func (s *InProc) Image(ctx context.Context, id uint64) (*mmdb.Image, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	img, err := s.db.Image(id)
	return img, markQueryError(err)
}

// List implements Shard.
func (s *InProc) List(ctx context.Context) ([]ObjectMeta, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	var out []ObjectMeta
	for _, id := range append(s.db.Binaries(), s.db.EditedIDs()...) {
		obj, err := s.db.Get(id)
		if errors.Is(err, catalog.ErrNotFound) {
			continue // deleted between listing and lookup
		}
		if err != nil {
			return nil, markQueryError(err)
		}
		m := ObjectMeta{ID: obj.ID, Kind: obj.Kind.String(), Name: obj.Name}
		if obj.Kind == mmdb.KindEdited {
			m.BaseID = obj.Seq.BaseID
		}
		out = append(out, m)
	}
	return out, nil
}

// Delete implements Shard.
func (s *InProc) Delete(ctx context.Context, id uint64) error {
	if err := s.check(ctx); err != nil {
		return err
	}
	return markQueryError(s.db.Delete(id))
}

// Query implements Shard. A non-nil sp records the engine's span tree
// directly under the coordinator's shard span — no serialization hop.
func (s *InProc) Query(ctx context.Context, text, mode string, sp *obs.Span) (*ShardAnswer, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	m, err := ParseMode(mode)
	if err != nil {
		return nil, queryError{err}
	}
	res, err := s.db.QueryCompoundTracedCtx(ctx, text, m, obs.TraceForSpan(sp))
	if err != nil {
		return nil, markQueryError(err)
	}
	return &ShardAnswer{IDs: res.IDs, Stats: res.Stats}, nil
}

// MultiRange implements Shard.
func (s *InProc) MultiRange(ctx context.Context, bins []int, pctMin, pctMax float64, mode string, sp *obs.Span) (*ShardAnswer, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	m, err := ParseMode(mode)
	if err != nil {
		return nil, queryError{err}
	}
	res, err := s.db.RangeQueryMultiTracedCtx(ctx, mmdb.MultiRange{Bins: bins, PctMin: pctMin, PctMax: pctMax}, m, obs.TraceForSpan(sp))
	if err != nil {
		return nil, markQueryError(err)
	}
	return &ShardAnswer{IDs: res.IDs, Stats: res.Stats}, nil
}

// Similar implements Shard.
func (s *InProc) Similar(ctx context.Context, probe *mmdb.Image, k int, metric string, sp *obs.Span) ([]mmdb.Match, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	m, err := ParseMetric(metric)
	if err != nil {
		return nil, queryError{err}
	}
	matches, _, err := s.db.QueryByExampleTracedCtx(ctx, probe, k, m, obs.TraceForSpan(sp))
	if err != nil {
		return nil, markQueryError(err)
	}
	return matches, nil
}

// Stats implements Shard.
func (s *InProc) Stats(ctx context.Context) (*mmdb.Stats, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	st, err := s.db.Stats()
	if err != nil {
		return nil, err
	}
	return &st, nil
}
