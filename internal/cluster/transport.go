package cluster

import (
	"context"
	"errors"
	"strconv"
	"time"

	mmdb "repro"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/store"
)

// ShardAnswer is one shard's contribution to a set-style (range, compound,
// multirange) query.
type ShardAnswer struct {
	IDs   []uint64
	Stats mmdb.QueryStats
}

// ObjectMeta is the shard-agnostic slice of catalog metadata the
// coordinator needs for routing and rebalance: ids, kinds and the base
// link of edited objects.
type ObjectMeta struct {
	ID     uint64
	Kind   string // "binary" or "edited"
	Name   string
	BaseID uint64 // 0 for binaries
}

// Shard is one partition of the database as the coordinator sees it. Two
// implementations exist: InProc (embedded *mmdb.DB) and HTTPShard
// (internal/client against an `esidb serve` process). Mode and metric
// travel as their wire strings ("bwm", "l1", ...) exactly as the HTTP API
// takes them; the in-process transport parses them with the same tables.
type Shard interface {
	ID() string
	// Ping is the health probe; nil means the shard is serving.
	Ping(ctx context.Context) error

	InsertImage(ctx context.Context, id uint64, name string, img *mmdb.Image) error
	InsertSequence(ctx context.Context, id uint64, name string, seq *mmdb.Sequence) error
	HasObject(ctx context.Context, id uint64) (bool, error)
	// Object returns metadata plus, for edited objects, the parsed script.
	Object(ctx context.Context, id uint64) (*ObjectMeta, *mmdb.Sequence, error)
	Image(ctx context.Context, id uint64) (*mmdb.Image, error)
	List(ctx context.Context) ([]ObjectMeta, error)
	Delete(ctx context.Context, id uint64) error

	// The read-query methods take an optional parent span (nil disables
	// tracing): transports attach the shard-side span tree under it — the
	// in-process transport records directly, the HTTP transport propagates
	// the trace context via a traceparent header and adopts the span tree
	// the shard returns. Either way the coordinator ends up holding one
	// merged tree under a single trace id.
	Query(ctx context.Context, text, mode string, sp *obs.Span) (*ShardAnswer, error)
	MultiRange(ctx context.Context, bins []int, pctMin, pctMax float64, mode string, sp *obs.Span) (*ShardAnswer, error)
	Similar(ctx context.Context, probe *mmdb.Image, k int, metric string, sp *obs.Span) ([]mmdb.Match, error)
	Stats(ctx context.Context) (*mmdb.Stats, error)
}

// Policy is the per-shard call discipline the coordinator wraps every
// transport call in.
type Policy struct {
	// Timeout bounds each attempt (not the whole retry loop).
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried (so attempts
	// = Retries+1). Only infra failures retry; query errors (bad request,
	// not found) surface immediately.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per retry.
	Backoff time.Duration
	// Hedge, when > 0, launches a duplicate of a read call that has not
	// answered within the delay and takes whichever returns first —
	// tail-latency insurance. Writes are never hedged.
	Hedge time.Duration
}

// DefaultPolicy is the coordinator default: tight enough that a dead
// loopback shard is declared missed in well under a second.
func DefaultPolicy() Policy {
	return Policy{Timeout: 5 * time.Second, Retries: 2, Backoff: 50 * time.Millisecond}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.Timeout <= 0 {
		p.Timeout = d.Timeout
	}
	if p.Retries < 0 {
		p.Retries = 0
	}
	if p.Backoff <= 0 {
		p.Backoff = d.Backoff
	}
	return p
}

// queryError marks failures that are the query's (or caller's) fault —
// parse errors, unknown modes, missing objects. They are deterministic, so
// retrying is useless and degrading to a partial result would turn a user
// error into silent data loss; the coordinator fails the whole request.
type queryError struct{ err error }

func (e queryError) Error() string { return e.err.Error() }
func (e queryError) Unwrap() error { return e.err }

// asQueryError classifies an error: HTTP 4xx responses and local
// validation failures are query errors; transport faults, 5xx and a
// closed shard database are shard failures (retryable, then degradable).
func isQueryError(err error) bool {
	var qe queryError
	if errors.As(err, &qe) {
		return true
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status >= 400 && ae.Status < 500
	}
	return false
}

// markQueryError wraps local (in-process) errors that cannot heal with a
// retry, except a closed store, which is how a killed in-process shard
// presents — that must look like a shard failure so degraded mode kicks
// in, mirroring a dead HTTP shard.
func markQueryError(err error) error {
	if err == nil || errors.Is(err, store.ErrClosed) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return queryError{err}
}

// callShard is callShardSpan without tracing — the form the management
// paths (inserts, id sync, rebalance) use, since only queries are traced.
func callShard[T any](ctx context.Context, pol Policy, read bool, fn func(context.Context) (T, error)) (T, error) {
	return callShardSpan(ctx, pol, read, nil, func(actx context.Context, _ *obs.Span) (T, error) {
		return fn(actx)
	})
}

// callShardSpan runs fn under the policy: per-attempt timeout, bounded
// retries with doubling backoff for shard failures, and (for reads) an
// optional hedged duplicate. The context governs the whole loop — once it
// is done, no more attempts start. sp (nil-safe) collects one child span
// per attempt, so a traced query shows its retries, hedges and timeouts.
func callShardSpan[T any](ctx context.Context, pol Policy, read bool, sp *obs.Span, fn func(context.Context, *obs.Span) (T, error)) (T, error) {
	var zero T
	var err error
	backoff := pol.Backoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			sp.Count(obs.TClusterRetries, 1)
			select {
			case <-ctx.Done():
				return zero, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		var v T
		v, err = attemptShard(ctx, pol, read, sp, attempt, fn)
		if err == nil {
			return v, nil
		}
		if ctx.Err() != nil {
			return zero, err
		}
		if isQueryError(err) || attempt >= pol.Retries {
			return zero, err
		}
	}
}

// attemptShard is one policy attempt: fn under the per-attempt timeout,
// plus the hedged duplicate for reads. Each launch (primary or hedge) gets
// its own "attempt" span recording try number, hedge status and error.
func attemptShard[T any](ctx context.Context, pol Policy, read bool, sp *obs.Span, attempt int, fn func(context.Context, *obs.Span) (T, error)) (T, error) {
	actx, cancel := context.WithTimeout(ctx, pol.Timeout)
	defer cancel()
	run := func(hedged bool) (T, error) {
		asp := sp.StartChild("attempt")
		asp.SetAttr("try", strconv.Itoa(attempt+1))
		if hedged {
			asp.SetAttr("hedged", "true")
		}
		v, err := fn(actx, asp)
		if err != nil {
			asp.SetAttr("error", err.Error())
			if errors.Is(actx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
				asp.SetAttr("timeout", pol.Timeout.String())
			}
		}
		asp.End()
		return v, err
	}
	if !read || pol.Hedge <= 0 {
		return run(false)
	}
	type res struct {
		v   T
		err error
	}
	ch := make(chan res, 2)
	launch := func(hedged bool) { go func() { v, err := run(hedged); ch <- res{v, err} }() }
	launch(false)
	timer := time.NewTimer(pol.Hedge)
	defer timer.Stop()
	select {
	case r := <-ch:
		// Answered (either way) before the hedge delay: no duplicate; the
		// retry loop owns failures.
		return r.v, r.err
	case <-timer.C:
		mHedges.Inc()
		sp.Count(obs.TClusterHedges, 1)
		launch(true)
	}
	// Two attempts racing; first success wins, else the last error. Reads
	// are idempotent, so racing duplicates is safe.
	var lastErr error
	for inflight := 2; inflight > 0; inflight-- {
		r := <-ch
		if r.err == nil {
			return r.v, nil
		}
		lastErr = r.err
	}
	var zero T
	return zero, lastErr
}
