package cluster

import (
	"context"
	"errors"
	"net/http"
	"strings"

	mmdb "repro"
	"repro/internal/client"
	"repro/internal/obs"
)

// HTTPShard is the network transport: the shard is an `esidb serve`
// process reached through internal/client. All calls thread the context
// into the HTTP request, so coordinator deadlines cancel in-flight shard
// work.
type HTTPShard struct {
	id string
	c  *client.Client
}

// NewHTTPShard returns a shard named id at baseURL. httpClient may be nil
// for http.DefaultClient.
func NewHTTPShard(id, baseURL string, httpClient *http.Client) *HTTPShard {
	return &HTTPShard{id: id, c: client.New(baseURL, httpClient)}
}

// ID implements Shard.
func (s *HTTPShard) ID() string { return s.id }

// Ping implements Shard.
func (s *HTTPShard) Ping(ctx context.Context) error {
	return s.c.Health(ctx)
}

// InsertImage implements Shard.
func (s *HTTPShard) InsertImage(ctx context.Context, id uint64, name string, img *mmdb.Image) error {
	_, err := s.c.InsertImageCtx(ctx, id, name, img)
	return err
}

// InsertSequence implements Shard.
func (s *HTTPShard) InsertSequence(ctx context.Context, id uint64, name string, seq *mmdb.Sequence) error {
	_, err := s.c.InsertSequenceCtx(ctx, id, name, seq)
	return err
}

// HasObject implements Shard.
func (s *HTTPShard) HasObject(ctx context.Context, id uint64) (bool, error) {
	_, err := s.c.GetCtx(ctx, id)
	var ae *client.APIError
	if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Object implements Shard.
func (s *HTTPShard) Object(ctx context.Context, id uint64) (*ObjectMeta, *mmdb.Sequence, error) {
	obj, err := s.c.GetCtx(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	meta := &ObjectMeta{ID: obj.ID, Kind: obj.Kind, Name: obj.Name, BaseID: obj.BaseID}
	var seq *mmdb.Sequence
	if obj.Kind == "edited" {
		seq, err = mmdb.ParseSequence(strings.NewReader(obj.Script))
		if err != nil {
			return nil, nil, err
		}
	}
	return meta, seq, nil
}

// Image implements Shard.
func (s *HTTPShard) Image(ctx context.Context, id uint64) (*mmdb.Image, error) {
	return s.c.ImageCtx(ctx, id)
}

// List implements Shard.
func (s *HTTPShard) List(ctx context.Context) ([]ObjectMeta, error) {
	objs, err := s.c.ListCtx(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]ObjectMeta, len(objs))
	for i, o := range objs {
		out[i] = ObjectMeta{ID: o.ID, Kind: o.Kind, Name: o.Name, BaseID: o.BaseID}
	}
	return out, nil
}

// Delete implements Shard.
func (s *HTTPShard) Delete(ctx context.Context, id uint64) error {
	return s.c.DeleteCtx(ctx, id)
}

// Query implements Shard. A non-nil sp rides to the shard as a traceparent
// header (plus ?trace=1); the span tree the shard returns is adopted under
// sp so the coordinator holds one merged tree.
func (s *HTTPShard) Query(ctx context.Context, text, mode string, sp *obs.Span) (*ShardAnswer, error) {
	res, err := s.c.QueryCtx(obs.ContextWithSpan(ctx, sp), text, mode, false)
	if err != nil {
		return nil, err
	}
	if res.Trace != nil {
		sp.Adopt(res.Trace.Root())
	}
	return toAnswer(res), nil
}

// MultiRange implements Shard.
func (s *HTTPShard) MultiRange(ctx context.Context, bins []int, pctMin, pctMax float64, mode string, sp *obs.Span) (*ShardAnswer, error) {
	res, err := s.c.MultiRangeCtx(obs.ContextWithSpan(ctx, sp), bins, pctMin, pctMax, mode)
	if err != nil {
		return nil, err
	}
	if res.Trace != nil {
		sp.Adopt(res.Trace.Root())
	}
	return toAnswer(res), nil
}

// Similar implements Shard.
func (s *HTTPShard) Similar(ctx context.Context, probe *mmdb.Image, k int, metric string, sp *obs.Span) ([]mmdb.Match, error) {
	matches, tr, err := s.c.SimilarTracedCtx(obs.ContextWithSpan(ctx, sp), probe, k, metric)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		sp.Adopt(tr.Root())
	}
	out := make([]mmdb.Match, len(matches))
	for i, m := range matches {
		out[i] = mmdb.Match{ID: m.ID, Dist: m.Dist}
	}
	return out, nil
}

// Stats implements Shard.
func (s *HTTPShard) Stats(ctx context.Context) (*mmdb.Stats, error) {
	return s.c.StatsCtx(ctx)
}

func toAnswer(res *client.QueryResult) *ShardAnswer {
	a := &ShardAnswer{IDs: res.IDs}
	a.Stats.BinariesChecked = res.Stats.BinariesChecked
	a.Stats.EditedWalked = res.Stats.EditedWalked
	a.Stats.OpsEvaluated = res.Stats.OpsEvaluated
	a.Stats.EditedSkipped = res.Stats.EditedSkipped
	return a
}
