package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	mmdb "repro"
	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// fastTune shrinks replication timing so tests converge in milliseconds.
func fastTune(r *Replicator) {
	r.PollWait = 150 * time.Millisecond
	r.Backoff = 5 * time.Millisecond
}

func newReplCluster(t *testing.T, shards, replicas int, tuneSet func(*ReplicaSet)) *InProcReplicaCluster {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	c, err := NewReplicatedInProcCluster(ctx, ReplicatedClusterConfig{
		Dir:      t.TempDir(),
		Shards:   shards,
		Replicas: replicas,
		Coord:    Options{Policy: testPolicy()},
		Tune:     fastTune,
		TuneSet:  tuneSet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitConverged blocks until every follower of every set has applied its
// leader's durable horizon.
func waitConverged(t *testing.T, c *InProcReplicaCluster, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for _, rs := range c.Sets {
		leaderID := rs.LeaderID()
		leader := c.Nodes[leaderID]
		if leader == nil {
			t.Fatalf("set %s: leader %q not in node table", rs.ID(), leaderID)
		}
		wst, err := leader.WALStatus(ctx)
		if err != nil {
			t.Fatalf("set %s: leader wal status: %v", rs.ID(), err)
		}
		for id, node := range c.Nodes {
			if id == leaderID || node.Replicator().Status().Leader == "" {
				continue
			}
			if node.Replicator().Status().Leader != leaderID {
				continue
			}
			st, err := node.Replicator().WaitApplied(ctx, wst.DurableLSN, timeout)
			if err != nil {
				t.Fatalf("follower %s: wait applied: %v", id, err)
			}
			if st.AppliedLSN < wst.DurableLSN {
				t.Fatalf("follower %s: applied %d < leader durable %d", id, st.AppliedLSN, wst.DurableLSN)
			}
		}
	}
}

// dbObjectIDs is the full object census of one replica, sorted.
func dbObjectIDs(db *mmdb.DB) []uint64 {
	ids := append([]uint64{}, db.Binaries()...)
	ids = append(ids, db.EditedIDs()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameUint64s(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReplicationConverges seeds a 2-shard × 2-replica cluster through the
// coordinator and checks every follower ends bit-identical to its leader:
// same objects, same answers to the parity query workload.
func TestReplicationConverges(t *testing.T) {
	c := newReplCluster(t, 2, 2, nil)
	corp := makeCorpus(6, 2, 42)
	corp.seedCluster(t, c.Coord)
	waitConverged(t, c, 10*time.Second)
	for _, rs := range c.Sets {
		leader := c.Nodes[rs.LeaderID()]
		follower := c.Nodes[rs.ID()+"-r1"]
		if follower == leader {
			follower = c.Nodes[rs.ID()+"-r0"]
		}
		lids, fids := dbObjectIDs(leader.DB()), dbObjectIDs(follower.DB())
		if !sameUint64s(lids, fids) {
			t.Fatalf("set %s: object census diverged: leader %v follower %v", rs.ID(), lids, fids)
		}
		for _, pq := range parityQueries {
			lres, err := leader.DB().QueryCompound(pq.text, mmdb.ModeBWM)
			if err != nil {
				t.Fatalf("leader %s: %v", pq.name, err)
			}
			fres, err := follower.DB().QueryCompound(pq.text, mmdb.ModeBWM)
			if err != nil {
				t.Fatalf("follower %s: %v", pq.name, err)
			}
			if !sameUint64s(lres.IDs, fres.IDs) {
				t.Fatalf("set %s query %s: leader %v follower %v", rs.ID(), pq.name, lres.IDs, fres.IDs)
			}
		}
	}
	// End to end: a coordinator query over the replicated cluster is whole.
	res, err := c.Coord.Query(context.Background(), "at least 10% red", "bwm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("replicated cluster returned partial result: missed %v", res.Missed)
	}
}

// replOracleConfigs mirrors the core differential-oracle shapes: varying
// sizes, edit depths and widening mixes under fixed seeds.
var replOracleConfigs = []struct {
	seed    int64
	nBase   int
	perBase int
	nonWid  float64
}{
	{seed: 101, nBase: 4, perBase: 3, nonWid: 0},
	{seed: 202, nBase: 6, perBase: 3, nonWid: 0.3},
	{seed: 303, nBase: 5, perBase: 4, nonWid: 0.5},
	{seed: 404, nBase: 8, perBase: 2, nonWid: 0.8},
	{seed: 505, nBase: 3, perBase: 6, nonWid: 1},
}

// randomReplRanges mirrors the core oracle workload generator.
func randomReplRanges(rng *rand.Rand, bins, n int) []mmdb.Range {
	out := make([]mmdb.Range, n)
	for i := range out {
		lo := rng.Float64()
		q := mmdb.Range{Bin: rng.Intn(bins), PctMin: lo, PctMax: lo + rng.Float64()*(1-lo)}
		switch rng.Intn(8) {
		case 0:
			q.PctMin = 0
		case 1:
			q.PctMax = 1
		case 2:
			q.PctMin, q.PctMax = 0, 1
		case 3:
			q.PctMax = q.PctMin
		}
		out[i] = q
	}
	return out
}

// TestReplicationFollowerReadParity is the differential oracle extended to
// replication: across 5 database shapes × 50 random range queries (250
// combinations), a follower that has applied the leader's durable LSN
// answers every query identically to the leader.
func TestReplicationFollowerReadParity(t *testing.T) {
	for _, cfg := range replOracleConfigs {
		cfg := cfg
		t.Run(fmt.Sprintf("seed=%d", cfg.seed), func(t *testing.T) {
			c := newReplCluster(t, 1, 2, nil)
			ctx := context.Background()
			flags := dataset.Flags(cfg.nBase, 24, 18, cfg.seed)
			aug := dataset.NewAugmenter(dataset.AugmentConfig{
				PerBase:         cfg.perBase,
				OpsPerImage:     4,
				NonWideningFrac: cfg.nonWid,
				Seed:            cfg.seed + 1,
			})
			for _, f := range flags {
				if _, _, err := c.Coord.InsertImage(ctx, f.Name, f.Img); err != nil {
					t.Fatal(err)
				}
			}
			for i, f := range flags {
				base := uint64(i + 1)
				others := make([]uint64, 0, cfg.nBase-1)
				for j := 1; j <= cfg.nBase; j++ {
					if uint64(j) != base {
						others = append(others, uint64(j))
					}
				}
				for _, seq := range aug.ScriptsFor(base, f.Img, others) {
					if _, _, err := c.Coord.InsertSequence(ctx, f.Name+"-edit", seq); err != nil {
						t.Fatal(err)
					}
				}
			}
			waitConverged(t, c, 10*time.Second)
			leader := c.Nodes["s0-r0"].DB()
			follower := c.Nodes["s0-r1"].DB()
			rng := rand.New(rand.NewSource(cfg.seed * 7))
			for qi, q := range randomReplRanges(rng, leader.Quantizer().Bins(), 50) {
				lres, err := leader.RangeQuery(q, mmdb.ModeBWM)
				if err != nil {
					t.Fatalf("query %d leader: %v", qi, err)
				}
				fres, err := follower.RangeQuery(q, mmdb.ModeBWM)
				if err != nil {
					t.Fatalf("query %d follower: %v", qi, err)
				}
				if !sameUint64s(lres.IDs, fres.IDs) {
					t.Fatalf("query %d %+v: leader %v follower %v", qi, q, lres.IDs, fres.IDs)
				}
			}
		})
	}
}

// TestReplicationFailover is the fault-injection acceptance test: a
// 3-replica shard under concurrent insert and query load loses its leader.
// The monitor must promote within its health window, no acknowledged write
// may be lost, and every query served during the whole episode must be
// whole (Partial=false) and error-free.
func TestReplicationFailover(t *testing.T) {
	c := newReplCluster(t, 1, 3, func(rs *ReplicaSet) { rs.AckTimeout = 3 * time.Second })
	rs := c.Sets[0]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.StartMonitors(ctx, 20*time.Millisecond)

	flags := dataset.Flags(48, 16, 12, 9)
	var (
		mu    sync.Mutex
		acked []uint64
	)
	// Seed a little so queries have something to chew on from the start.
	for i := 0; i < 6; i++ {
		id, _, err := c.Coord.InsertImage(ctx, flags[i].Name, flags[i].Img)
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, id)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Query load: must stay whole throughout the failover. Collect
	// failures rather than t.Fatal from a goroutine.
	var qerrs []string
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := c.Coord.Query(ctx, "at least 1% red", "bwm", nil)
			mu.Lock()
			if err != nil {
				qerrs = append(qerrs, err.Error())
			} else if res.Partial {
				qerrs = append(qerrs, fmt.Sprintf("partial result, missed %v", res.Missed))
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Write load: inserts keep flowing across the kill. Failures are
	// expected inside the promotion window (those writes are unacked and
	// carry no guarantee); successes are recorded as acked.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 6; i < len(flags); i++ {
			select {
			case <-stop:
				return
			default:
			}
			id, _, err := c.Coord.InsertImage(ctx, flags[i].Name, flags[i].Img)
			if err == nil {
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Let load build, then kill the leader mid-flight.
	time.Sleep(50 * time.Millisecond)
	oldLeader := rs.LeaderID()
	c.Nodes[oldLeader].Kill()

	// Promotion must land within the health window (3 failed probes at
	// 20ms) plus slack.
	deadline := time.Now().Add(5 * time.Second)
	for rs.LeaderID() == oldLeader {
		if time.Now().After(deadline) {
			t.Fatalf("no promotion within deadline; leader still %s", oldLeader)
		}
		time.Sleep(5 * time.Millisecond)
	}
	newLeader := rs.LeaderID()
	if newLeader == oldLeader || newLeader == "" {
		t.Fatalf("bad promotion: %q -> %q", oldLeader, newLeader)
	}

	// Keep load running against the new leader, then wind down.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Writes must flow again post-promotion.
	id, _, err := c.Coord.InsertImage(ctx, "post-failover", flags[0].Img)
	if err != nil {
		t.Fatalf("insert after promotion: %v", err)
	}
	mu.Lock()
	acked = append(acked, id)
	nq := len(qerrs)
	mu.Unlock()
	if nq > 0 {
		t.Fatalf("%d query failures during failover, first: %s", nq, qerrs[0])
	}

	// Zero acked-write loss: every acknowledged insert is on the new
	// leader.
	ldb := c.Nodes[newLeader].DB()
	have := make(map[uint64]bool)
	for _, oid := range dbObjectIDs(ldb) {
		have[oid] = true
	}
	mu.Lock()
	defer mu.Unlock()
	for _, aid := range acked {
		if !have[aid] {
			t.Fatalf("acked write %d lost after promotion to %s (census %v)", aid, newLeader, dbObjectIDs(ldb))
		}
	}
}

// TestReplicationKillPointSweep kills the leader after k acknowledged
// writes for a sweep of k, promotes, and verifies zero acked loss every
// time — the arbitrary-kill-point companion to the concurrent failover
// test.
func TestReplicationKillPointSweep(t *testing.T) {
	flags := dataset.Flags(24, 16, 12, 5)
	for _, killAfter := range []int{0, 1, 3, 7, 14} {
		killAfter := killAfter
		t.Run(fmt.Sprintf("after=%d", killAfter), func(t *testing.T) {
			c := newReplCluster(t, 1, 3, nil)
			rs := c.Sets[0]
			ctx := context.Background()
			var acked []uint64
			for i := 0; i < killAfter; i++ {
				id, _, err := c.Coord.InsertImage(ctx, flags[i].Name, flags[i].Img)
				if err != nil {
					t.Fatal(err)
				}
				acked = append(acked, id)
			}
			c.Nodes[rs.LeaderID()].Kill()
			newLeader, err := rs.PromoteNow(ctx)
			if err != nil {
				t.Fatalf("promote: %v", err)
			}
			// The cluster keeps accepting writes after failover.
			for i := killAfter; i < killAfter+5; i++ {
				id, _, err := c.Coord.InsertImage(ctx, flags[i].Name, flags[i].Img)
				if err != nil {
					t.Fatalf("insert %d after promotion: %v", i, err)
				}
				acked = append(acked, id)
			}
			have := make(map[uint64]bool)
			for _, oid := range dbObjectIDs(c.Nodes[newLeader].DB()) {
				have[oid] = true
			}
			for _, aid := range acked {
				if !have[aid] {
					t.Fatalf("acked write %d lost (killed after %d)", aid, killAfter)
				}
			}
			waitConverged(t, c, 10*time.Second)
		})
	}
}

// servedBy walks a read span and reports which replica answered (the
// replica child without an error attribute).
func servedBy(t *testing.T, sp *obs.Span) (id, role string) {
	t.Helper()
	for _, child := range sp.Children() {
		if child.Attr("error") == "" {
			return child.Name(), child.Attr("role")
		}
	}
	t.Fatalf("no successful replica leg in span %q", sp.Name())
	return "", ""
}

// TestFollowerFreshnessBound pins the follower-read contract: a follower
// whose lag exceeds FreshnessBound stops serving reads (they redirect to
// the leader), the esidb_replica_lag gauge tracks the true LSN delta, and
// catching back up restores follower reads.
func TestFollowerFreshnessBound(t *testing.T) {
	c := newReplCluster(t, 1, 2, func(rs *ReplicaSet) { rs.FreshnessBound = 2 })
	rs := c.Sets[0]
	ctx := context.Background()
	flags := dataset.Flags(10, 16, 12, 3)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Coord.InsertImage(ctx, flags[i].Name, flags[i].Img); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c, 10*time.Second)
	rs.Probe(ctx)

	leader, follower := c.Nodes["s0-r0"], c.Nodes["s0-r1"]
	// Fresh follower serves reads (it is first in the read order).
	sp := obs.NewRootSpan("read")
	if _, err := rs.Query(ctx, "at least 1% red", "bwm", sp); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if id, role := servedBy(t, sp); id != "replica:s0-r1" || role != RoleFollower {
		t.Fatalf("fresh read served by %s (%s), want follower s0-r1", id, role)
	}

	// Stall the follower and grow the leader's log past the bound. Writes
	// bypass the coordinator here on purpose: the semi-sync ack would
	// (correctly) refuse them with a dead follower, and this test is about
	// read routing.
	follower.Replicator().Pause()
	for i := 3; i < 8; i++ {
		if _, err := leader.DB().InsertImage(flags[i].Name, flags[i].Img); err != nil {
			t.Fatal(err)
		}
	}
	wst, err := leader.WALStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Pause may land mid-page, so let the applied cursor settle before
	// measuring the true delta.
	gaugeDeadline := time.Now().Add(5 * time.Second)
	gauge := obs.Default().Gauge(`esidb_replica_lag{replica="s0-r1"}`)
	var wantLag uint64
	for {
		wantLag = wst.DurableLSN - follower.Replicator().Status().AppliedLSN
		// The node-side gauge must keep tracking the true delta even while
		// the apply loop is stalled.
		if wantLag > 2 && uint64(gauge.Value()) == wantLag &&
			follower.Replicator().Status().Lag == wantLag {
			break
		}
		if time.Now().After(gaugeDeadline) {
			t.Fatalf("esidb_replica_lag = %v, status lag %d, want %d (>2)",
				gauge.Value(), follower.Replicator().Status().Lag, wantLag)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A probe refreshes the set's routing view; the stale follower must be
	// skipped and the read redirected to the leader.
	rs.Probe(ctx)
	sp = obs.NewRootSpan("read-stale")
	if _, err := rs.Query(ctx, "at least 1% red", "bwm", sp); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if id, role := servedBy(t, sp); id != "replica:s0-r0" || role != RoleLeader {
		t.Fatalf("stale-follower read served by %s (%s), want leader redirect", id, role)
	}

	// Catch-up restores follower reads.
	follower.Replicator().Resume()
	st, err := follower.Replicator().WaitApplied(ctx, wst.DurableLSN, 10*time.Second)
	if err != nil || st.AppliedLSN < wst.DurableLSN {
		t.Fatalf("follower did not catch up: %+v err=%v", st, err)
	}
	rs.Probe(ctx)
	sp = obs.NewRootSpan("read-caught-up")
	if _, err := rs.Query(ctx, "at least 1% red", "bwm", sp); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if id, role := servedBy(t, sp); id != "replica:s0-r1" || role != RoleFollower {
		t.Fatalf("caught-up read served by %s (%s), want follower again", id, role)
	}
}

// TestReplicationFollowerCrashRecovery crashes a follower mid-catch-up
// (simulated power loss: WAL abandoned, no checkpoint), reopens it from
// disk, re-follows, and requires convergence to leader parity — follower
// replay is part of the crash matrix.
func TestReplicationFollowerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	openAt := func(name string) *mmdb.DB {
		db, err := mmdb.Open(mmdb.WithPath(dir + "/" + name + ".db"))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	ldb, fdb := openAt("leader"), openAt("follower")
	defer ldb.Close()
	leader := NewReplicaNode(ctx, "L", ldb)
	follower := NewReplicaNode(ctx, "F", fdb)
	fastTune(leader.Replicator())
	fastTune(follower.Replicator())
	if err := follower.Follow(ctx, "L", "", leader); err != nil {
		t.Fatal(err)
	}

	flags := dataset.Flags(20, 16, 12, 11)
	for _, f := range flags {
		if _, err := ldb.InsertImage(f.Name, f.Img); err != nil {
			t.Fatal(err)
		}
	}
	wst, err := leader.WALStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-catch-up: wait until the follower is somewhere strictly
	// inside the stream, then pull the plug without sync or checkpoint.
	deadline := time.Now().Add(10 * time.Second)
	for follower.Replicator().Status().AppliedLSN == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never started applying")
		}
		time.Sleep(time.Millisecond)
	}
	if err := fdb.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	follower.Replicator().Stop()

	// Reopen from disk — recovery replays the follower's own WAL — and
	// resume following.
	fdb2 := openAt("follower")
	defer fdb2.Close()
	follower2 := NewReplicaNode(ctx, "F", fdb2)
	fastTune(follower2.Replicator())
	if err := follower2.Follow(ctx, "L", "", leader); err != nil {
		t.Fatal(err)
	}
	st, err := follower2.Replicator().WaitApplied(ctx, wst.DurableLSN, 15*time.Second)
	if err != nil || st.AppliedLSN < wst.DurableLSN {
		t.Fatalf("recovered follower did not converge: %+v err=%v", st, err)
	}
	if lids, fids := dbObjectIDs(ldb), dbObjectIDs(fdb2); !sameUint64s(lids, fids) {
		t.Fatalf("census diverged after crash recovery: leader %v follower %v", lids, fids)
	}
	rng := rand.New(rand.NewSource(99))
	for qi, q := range randomReplRanges(rng, ldb.Quantizer().Bins(), 20) {
		lres, err := ldb.RangeQuery(q, mmdb.ModeBWM)
		if err != nil {
			t.Fatal(err)
		}
		fres, err := fdb2.RangeQuery(q, mmdb.ModeBWM)
		if err != nil {
			t.Fatal(err)
		}
		if !sameUint64s(lres.IDs, fres.IDs) {
			t.Fatalf("query %d %+v: leader %v recovered follower %v", qi, q, lres.IDs, fres.IDs)
		}
	}
}

// TestReplicationResyncAfterCheckpoint forces the snapshot path: the
// leader checkpoints (truncating its log) before the follower attaches, so
// tailing from zero is impossible and the follower must re-seed via
// snapshot copy, then converge.
func TestReplicationResyncAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ldb, err := mmdb.Open(mmdb.WithPath(dir + "/leader.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer ldb.Close()
	flags := dataset.Flags(8, 16, 12, 21)
	for _, f := range flags[:5] {
		if _, err := ldb.InsertImage(f.Name, f.Img); err != nil {
			t.Fatal(err)
		}
	}
	if err := ldb.WALCheckpoint(); err != nil {
		t.Fatal(err)
	}
	leader := NewReplicaNode(ctx, "L", ldb)
	fdb, err := mmdb.Open(mmdb.WithPath(dir + "/follower.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer fdb.Close()
	follower := NewReplicaNode(ctx, "F", fdb)
	fastTune(leader.Replicator())
	fastTune(follower.Replicator())
	if err := follower.Follow(ctx, "L", "", leader); err != nil {
		t.Fatal(err)
	}
	// More writes after the checkpoint arrive through the tail.
	for _, f := range flags[5:] {
		if _, err := ldb.InsertImage(f.Name, f.Img); err != nil {
			t.Fatal(err)
		}
	}
	wst, err := leader.WALStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st, err := follower.Replicator().WaitApplied(ctx, wst.DurableLSN, 15*time.Second)
	if err != nil || st.AppliedLSN < wst.DurableLSN {
		t.Fatalf("follower did not converge after resync: %+v err=%v", st, err)
	}
	if st.Resyncs == 0 {
		t.Fatal("expected at least one snapshot resync")
	}
	if lids, fids := dbObjectIDs(ldb), dbObjectIDs(fdb); !sameUint64s(lids, fids) {
		t.Fatalf("census diverged after resync: leader %v follower %v", lids, fids)
	}
}

// TestReplicationLeaderRestartKeepsLSNSpace pins the cross-restart LSN
// contract end to end: a leader that checkpoints (clean shutdown) and
// reopens must continue its LSN space rather than restarting at 1, so a
// follower cursor from before the restart still means what it meant —
// semi-sync acks stay truthful and no frames are silently skipped.
func TestReplicationLeaderRestartKeepsLSNSpace(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ldb, err := mmdb.Open(mmdb.WithPath(dir + "/leader.db"))
	if err != nil {
		t.Fatal(err)
	}
	flags := dataset.Flags(8, 16, 12, 33)
	for _, f := range flags[:5] {
		if _, err := ldb.InsertImage(f.Name, f.Img); err != nil {
			t.Fatal(err)
		}
	}
	wstBefore, ok := ldb.WALStats()
	if !ok {
		t.Fatal("leader has no WAL")
	}
	if err := ldb.Close(); err != nil { // clean shutdown checkpoints the log
		t.Fatal(err)
	}

	ldb2, err := mmdb.Open(mmdb.WithPath(dir + "/leader.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer ldb2.Close()
	for _, f := range flags[5:] {
		if _, err := ldb2.InsertImage(f.Name, f.Img); err != nil {
			t.Fatal(err)
		}
	}
	wstAfter, _ := ldb2.WALStats()
	if wstAfter.DurableLSN <= wstBefore.DurableLSN {
		t.Fatalf("LSN space restarted: durable %d before close, %d after reopen",
			wstBefore.DurableLSN, wstAfter.DurableLSN)
	}
	// A cursor parked at the old horizon (a follower that outlived the
	// restart) sees only post-restart frames — never a replay of LSNs it
	// already applied under different content.
	res, err := ldb2.WALTail(ctx, wstBefore.DurableLSN, 0, 0)
	if err != nil {
		t.Fatalf("tail from pre-restart horizon: %v", err)
	}
	if len(res.Frames) == 0 {
		t.Fatal("no frames above the pre-restart horizon")
	}
	for _, fr := range res.Frames {
		if fr.LSN <= wstBefore.DurableLSN {
			t.Fatalf("tail re-served pre-restart LSN %d (horizon %d)", fr.LSN, wstBefore.DurableLSN)
		}
	}
	// And a fresh follower of the restarted leader still converges.
	leader := NewReplicaNode(ctx, "L", ldb2)
	fdb, err := mmdb.Open(mmdb.WithPath(dir + "/follower.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer fdb.Close()
	follower := NewReplicaNode(ctx, "F", fdb)
	fastTune(leader.Replicator())
	fastTune(follower.Replicator())
	if err := follower.Follow(ctx, "L", "", leader); err != nil {
		t.Fatal(err)
	}
	st, err := follower.Replicator().WaitApplied(ctx, wstAfter.DurableLSN, 15*time.Second)
	if err != nil || st.AppliedLSN < wstAfter.DurableLSN {
		t.Fatalf("follower did not converge across leader restart: %+v err=%v", st, err)
	}
	if lids, fids := dbObjectIDs(ldb2), dbObjectIDs(fdb); !sameUint64s(lids, fids) {
		t.Fatalf("census diverged: leader %v follower %v", lids, fids)
	}
}

// TestResyncRetiredEpochDoesNotPublish pins the resync epoch guard: a
// resync that finishes after its epoch was superseded by a Follow must not
// publish the retired leader's counters into the new epoch — a stale floor
// LSN in `applied` would falsely satisfy WaitApplied (and semi-sync acks)
// against the new leader's log.
func TestResyncRetiredEpochDoesNotPublish(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	adb, err := mmdb.Open(mmdb.WithPath(dir + "/a.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer adb.Close()
	bdb, err := mmdb.Open(mmdb.WithPath(dir + "/b.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer bdb.Close()
	fdb, err := mmdb.Open(mmdb.WithPath(dir + "/f.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer fdb.Close()
	flags := dataset.Flags(6, 16, 12, 3)
	for _, f := range flags {
		if _, err := adb.InsertImage(f.Name, f.Img); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint raises A's floor well above anything B will ever assign.
	if err := adb.WALCheckpoint(); err != nil {
		t.Fatal(err)
	}
	nodeA := NewReplicaNode(ctx, "A", adb)
	nodeB := NewReplicaNode(ctx, "B", bdb)
	follower := NewReplicaNode(ctx, "F", fdb)
	fastTune(follower.Replicator())
	if err := follower.Follow(ctx, "A", "", nodeA); err != nil {
		t.Fatal(err)
	}
	eOld := follower.Replicator().Status().Epoch
	// Retarget at the (empty) leader B: the epoch bumps, counters reset.
	if err := follower.Follow(ctx, "B", "", nodeB); err != nil {
		t.Fatal(err)
	}
	wstA, err := nodeA.WALStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wstA.BaseLSN == 0 {
		t.Fatal("precondition: A's checkpoint floor must be above zero")
	}
	// A resync for the retired epoch completes (or retires) without effect.
	if err := follower.Replicator().resync(eOld, nodeA); err != nil {
		t.Fatalf("stale resync: %v", err)
	}
	st := follower.Replicator().Status()
	if st.AppliedLSN >= wstA.BaseLSN {
		t.Fatalf("stale resync published retired-epoch counters: %+v (A floor %d)",
			st, wstA.BaseLSN)
	}
}

// newTwoNodeSet builds a bootstrapped leader/follower replica set over
// persistent databases and seeds it with the first seedN flags, every
// write fully acked.
func newTwoNodeSet(t *testing.T, seedN int) (*ReplicaSet, *ReplicaNode, *ReplicaNode, []dataset.NamedImage) {
	t.Helper()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	ldb, err := mmdb.Open(mmdb.WithPath(dir + "/l.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ldb.Close() })
	fdb, err := mmdb.Open(mmdb.WithPath(dir + "/f.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fdb.Close() })
	leader := NewReplicaNode(ctx, "L", ldb)
	follower := NewReplicaNode(ctx, "F", fdb)
	fastTune(leader.Replicator())
	fastTune(follower.Replicator())
	rs, err := NewReplicaSet("s0",
		ReplicaMember{ID: "L", Conn: leader},
		ReplicaMember{ID: "F", Conn: follower})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	flags := dataset.Flags(6, 16, 12, 77)
	for i := 0; i < seedN; i++ {
		if err := rs.InsertImage(ctx, uint64(i+1), flags[i].Name, flags[i].Img); err != nil {
			t.Fatalf("seed insert %d: %v", i+1, err)
		}
	}
	return rs, leader, follower, flags
}

// TestAckWriteIgnoresPromotedFollower: a follower promoted mid-flight
// answers WaitApplied as a leader, with an AppliedLSN from its *own* LSN
// space. The write path must not compare that against the old leader's
// LSN and record a false semi-sync ack.
func TestAckWriteIgnoresPromotedFollower(t *testing.T) {
	rs, _, follower, flags := newTwoNodeSet(t, 2)
	ctx := context.Background()
	follower.Replicator().Promote()
	rs.AckTimeout = 300 * time.Millisecond
	err := rs.InsertImage(ctx, 5, flags[4].Name, flags[4].Img)
	if !errors.Is(err, ErrNoAck) {
		t.Fatalf("insert with promoted follower = %v, want ErrNoAck", err)
	}
}

// TestAckWriteErrorDegradesFollowerHealth: a failed semi-sync wait must
// register on the follower's health view at write time — not a monitor
// tick later — so the read path stops preferring an unreachable follower.
func TestAckWriteErrorDegradesFollowerHealth(t *testing.T) {
	rs, _, follower, flags := newTwoNodeSet(t, 1)
	ctx := context.Background()
	follower.Kill()
	rs.AckTimeout = 300 * time.Millisecond
	if err := rs.InsertImage(ctx, 3, flags[2].Name, flags[2].Img); !errors.Is(err, ErrNoAck) {
		t.Fatalf("insert with dead follower = %v, want ErrNoAck", err)
	}
	_, followers := rs.snapshot()
	if got := followers[0].sm.current(); got == StateUp {
		t.Fatal("dead follower still StateUp after failed ack")
	}
}

// TestInsertDuplicateIDNotSilentlyAbsorbed: retry absorption must be
// narrow. An accidental collision — same id, different content — fails
// loudly with the duplicate-id error; only a true retry (identical
// content) finishes the ack and reports success.
func TestInsertDuplicateIDNotSilentlyAbsorbed(t *testing.T) {
	rs, _, _, flags := newTwoNodeSet(t, 2)
	ctx := context.Background()
	// Accidental collision on a binary id.
	if err := rs.InsertImage(ctx, 1, flags[2].Name, flags[2].Img); !errors.Is(err, catalog.ErrIDTaken) {
		t.Fatalf("conflicting image insert = %v, want ErrIDTaken", err)
	}
	// True retry: identical content is absorbed into an ack.
	if err := rs.InsertImage(ctx, 1, flags[0].Name, flags[0].Img); err != nil {
		t.Fatalf("identical image retry = %v, want success", err)
	}

	aug := dataset.NewAugmenter(dataset.AugmentConfig{PerBase: 1, OpsPerImage: 3, Seed: 9})
	seqA := aug.ScriptsFor(1, flags[0].Img, []uint64{2})[0]
	seqB := aug.ScriptsFor(2, flags[1].Img, []uint64{1})[0]
	if err := rs.InsertSequence(ctx, 10, "edit", seqA.Clone()); err != nil {
		t.Fatalf("sequence insert: %v", err)
	}
	// Accidental collision on an edited id.
	if err := rs.InsertSequence(ctx, 10, "edit", seqB.Clone()); !errors.Is(err, catalog.ErrIDTaken) {
		t.Fatalf("conflicting sequence insert = %v, want ErrIDTaken", err)
	}
	// True retry of the sequence.
	if err := rs.InsertSequence(ctx, 10, "edit", seqA.Clone()); err != nil {
		t.Fatalf("identical sequence retry = %v, want success", err)
	}
}
