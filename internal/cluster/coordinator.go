package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	mmdb "repro"
	"repro/internal/exec"
	"repro/internal/obs"
)

// Options tunes a Coordinator.
type Options struct {
	// Policy is the per-shard call discipline (zero value = defaults).
	Policy Policy
	// Parallelism caps the fan-out worker pool; 0 means one worker per
	// shard (every shard queried concurrently).
	Parallelism int
}

// Coordinator owns the ring and a transport per shard and turns the
// sharded cluster back into one logical database: it assigns globally
// unique object ids on insert, routes whole base-clusters to their home
// shard, scatter-gathers queries and merges the answers.
type Coordinator struct {
	pol Policy
	par int

	mu    sync.RWMutex
	smap  *ShardMap             // guarded by mu
	ring  *Ring                 // guarded by mu
	conns []*shardConn          // guarded by mu; shard-map order
	byID  map[string]*shardConn // guarded by mu

	health *healthState

	insertMu sync.Mutex
	lastID   uint64 // guarded by insertMu
	idSynced bool   // guarded by insertMu
}

// shardConn pairs a transport with its health accounting and metrics.
type shardConn struct {
	shard Shard
	lat   *obs.Histogram
	up    *obs.Gauge
	state *stateMachine
}

func newShardConn(sh Shard) *shardConn {
	reg := obs.Default()
	c := &shardConn{
		shard: sh,
		lat:   reg.Histogram(fmt.Sprintf("esidb_cluster_shard_seconds{shard=%q}", sh.ID()), obs.DefBuckets),
		up:    reg.Gauge(fmt.Sprintf("esidb_cluster_shard_up{shard=%q}", sh.ID())),
		state: newStateMachine(),
	}
	c.publish()
	return c
}

// New builds a coordinator over the map using the provided transports
// (one per shard id in the map).
func New(m *ShardMap, shards map[string]Shard, opts Options) (*Coordinator, error) {
	ring, err := NewRing(m)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		pol:    opts.Policy.withDefaults(),
		par:    opts.Parallelism,
		health: newHealthState(),
	}
	conns := make([]*shardConn, 0, len(m.Shards))
	byID := make(map[string]*shardConn, len(m.Shards))
	for _, info := range m.Shards {
		sh, ok := shards[info.ID]
		if !ok || sh == nil {
			return nil, fmt.Errorf("cluster: no transport for shard %q", info.ID)
		}
		cc := newShardConn(sh)
		conns = append(conns, cc)
		byID[info.ID] = cc
	}
	c.mu.Lock()
	c.smap, c.ring, c.conns, c.byID = m, ring, conns, byID
	c.mu.Unlock()
	return c, nil
}

// NewInProcCluster is the convenience constructor for an n-shard embedded
// cluster: it opens n in-memory databases under shard ids "s0".."s{n-1}".
func NewInProcCluster(n int, opts Options) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", n)
	}
	m := &ShardMap{}
	shards := make(map[string]Shard, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		db, err := mmdb.Open()
		if err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, ShardInfo{ID: id})
		shards[id] = NewInProc(id, db)
	}
	return New(m, shards, opts)
}

// Map returns the current shard map.
func (c *Coordinator) Map() *ShardMap {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.smap
}

// ShardIDs returns the shard ids in map order.
func (c *Coordinator) ShardIDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.smap.Shards))
	for i, s := range c.smap.Shards {
		out[i] = s.ID
	}
	return out
}

// snapshot returns the current ring and connections without holding the
// lock across network calls.
func (c *Coordinator) snapshot() (*Ring, []*shardConn) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring, c.conns
}

func (c *Coordinator) connFor(baseID uint64) (*shardConn, string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id := c.ring.ShardFor(baseID)
	return c.byID[id], id
}

func (c *Coordinator) workers(n int) int {
	if c.par > 0 {
		return c.par
	}
	return n
}

// gather is the scatter half of every cluster query: fn runs against each
// live shard under the call policy (timeout, retry, hedge), failures past
// the retry budget become missed shards rather than errors, and query
// errors (bad request — deterministic on every shard) fail the whole call.
// A canceled context also fails the whole call: partial results are for
// dead shards, not impatient callers.
func gather[T any](ctx context.Context, c *Coordinator, tr *obs.Trace, fn func(ctx context.Context, sh Shard, sp *obs.Span) (T, error)) (vals []T, ok []bool, missed []string, err error) {
	_, conns := c.snapshot()
	var targets []*shardConn
	for _, cc := range conns {
		if c.health.active() && cc.state.current() == StateDown {
			missed = append(missed, cc.shard.ID())
			continue
		}
		targets = append(targets, cc)
	}
	tr.Count(obs.TClusterShardsQueried, int64(len(targets)))
	vals = make([]T, len(targets))
	ok = make([]bool, len(targets))
	errs, st := exec.Scatter(ctx, c.workers(len(targets)), len(targets), func(i int) error {
		cc := targets[i]
		shardID := cc.shard.ID()
		// One span per fan-out leg; the transport hangs the shard-side tree
		// (and callShardSpan its attempt spans) underneath it.
		sp := tr.StartSpan("shard:" + shardID)
		start := nowFunc()
		v, cerr := callShardSpan(ctx, c.pol, true, sp, func(actx context.Context, asp *obs.Span) (T, error) {
			done := observeSeconds(cc.lat)
			defer done()
			return fn(actx, cc.shard, asp)
		})
		obs.DefaultStats().RecordShardCall(shardID, nowFunc().Sub(start), cerr != nil)
		if cerr == nil {
			vals[i], ok[i] = v, true
			cc.noteSuccess()
		} else {
			sp.SetAttr("error", cerr.Error())
			if !isQueryError(cerr) && ctx.Err() == nil {
				cc.noteFailure()
			}
		}
		sp.End()
		return cerr
	})
	if st.Workers > 1 {
		st.Record(tr)
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, nil, nil, cerr
	}
	var failed int64
	for i, e := range errs {
		if e == nil {
			continue
		}
		if isQueryError(e) {
			return nil, nil, nil, e
		}
		failed++
		missed = append(missed, targets[i].shard.ID())
	}
	tr.Count(obs.TClusterShardsFailed, failed)
	if len(missed) == len(conns) {
		// Nothing answered; a fully missing result is an outage, not a
		// degraded answer.
		for _, e := range errs {
			if e != nil {
				return nil, nil, nil, fmt.Errorf("cluster: all %d shards failed: %w", len(conns), e)
			}
		}
		return nil, nil, nil, fmt.Errorf("cluster: all %d shards down", len(conns))
	}
	sort.Strings(missed)
	return vals, ok, missed, nil
}

// ensureRequestID gives the fan-out a request id if the edge did not mint
// one (CLI callers): every shard leg and the query-log event share it.
func ensureRequestID(ctx context.Context) context.Context {
	if obs.RequestIDFromContext(ctx) != "" {
		return ctx
	}
	return obs.ContextWithRequestID(ctx, obs.NewRequestID())
}

// logClusterQuery emits the fan-out's wide event into the process query
// log — always on, independent of whether the call was traced.
func logClusterQuery(ctx context.Context, start time.Time, kind, strategy, query string, tr *obs.Trace, results int, partial bool, err error) {
	ev := obs.QueryEvent{
		Time:       start,
		RequestID:  obs.RequestIDFromContext(ctx),
		Kind:       kind,
		Strategy:   strategy,
		Query:      query,
		Duration:   time.Since(start),
		Results:    results,
		Partial:    partial,
		SpanDigest: tr.Root().Digest(),
		Counters:   tr.Counters(),
	}
	if tr != nil {
		ev.TraceIDHex = tr.TraceID().String()
	}
	if err != nil {
		ev.Error = err.Error()
	}
	obs.DefaultQueryLog().Record(ev)
}

// Query scatter-gathers a textual (range or compound) query and returns
// the deduplicated id union in ascending order.
func (c *Coordinator) Query(ctx context.Context, text, mode string, tr *obs.Trace) (*Result, error) {
	ctx = ensureRequestID(ctx)
	start := time.Now()
	vals, ok, missed, err := gather(ctx, c, tr, func(actx context.Context, sh Shard, sp *obs.Span) (*ShardAnswer, error) {
		return sh.Query(actx, text, mode, sp)
	})
	if err != nil {
		logClusterQuery(ctx, start, "cluster.query", mode, text, tr, 0, false, err)
		return nil, err
	}
	res := mergeAnswers(vals, ok, missed, tr)
	logClusterQuery(ctx, start, "cluster.query", mode, text, tr, len(res.IDs), res.Partial, nil)
	return res, nil
}

// MultiRange scatter-gathers a structured multi-bin range query.
func (c *Coordinator) MultiRange(ctx context.Context, bins []int, pctMin, pctMax float64, mode string, tr *obs.Trace) (*Result, error) {
	ctx = ensureRequestID(ctx)
	start := time.Now()
	vals, ok, missed, err := gather(ctx, c, tr, func(actx context.Context, sh Shard, sp *obs.Span) (*ShardAnswer, error) {
		return sh.MultiRange(actx, bins, pctMin, pctMax, mode, sp)
	})
	if err != nil {
		logClusterQuery(ctx, start, "cluster.multirange", mode, fmt.Sprintf("bins=%v min=%g max=%g", bins, pctMin, pctMax), tr, 0, false, err)
		return nil, err
	}
	res := mergeAnswers(vals, ok, missed, tr)
	logClusterQuery(ctx, start, "cluster.multirange", mode, fmt.Sprintf("bins=%v min=%g max=%g", bins, pctMin, pctMax), tr, len(res.IDs), res.Partial, nil)
	return res, nil
}

// Similar scatter-gathers a k-NN query: every shard returns its local
// top-k, and the global top-k is the k smallest under the (dist,id) total
// order — identical to a single node holding all the data, because each
// shard's top-k is the true k-minimum of its partition under the same
// order.
func (c *Coordinator) Similar(ctx context.Context, probe *mmdb.Image, k int, metric string, tr *obs.Trace) (*KNNResult, error) {
	ctx = ensureRequestID(ctx)
	start := time.Now()
	vals, ok, missed, err := gather(ctx, c, tr, func(actx context.Context, sh Shard, sp *obs.Span) ([]mmdb.Match, error) {
		return sh.Similar(actx, probe, k, metric, sp)
	})
	if err != nil {
		logClusterQuery(ctx, start, "cluster.similar", metric, fmt.Sprintf("k=%d", k), tr, 0, false, err)
		return nil, err
	}
	res := &KNNResult{Missed: missed, Partial: len(missed) > 0}
	if res.Partial {
		tr.Count(obs.TClusterPartialResults, 1)
	}
	best := make(map[uint64]mmdb.Match)
	var dupes int64
	for i, matches := range vals {
		if !ok[i] {
			continue
		}
		for _, m := range matches {
			if prev, seen := best[m.ID]; seen {
				dupes++
				// Replicas report identical distances; keep the smaller
				// (dist,id) defensively.
				if m.Dist < prev.Dist {
					best[m.ID] = m
				}
				continue
			}
			best[m.ID] = m
		}
	}
	tr.Count(obs.TClusterDuplicatesMerged, dupes)
	merged := make([]mmdb.Match, 0, len(best))
	for _, m := range best {
		merged = append(merged, m)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist != merged[j].Dist {
			return merged[i].Dist < merged[j].Dist
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	res.Matches = merged
	logClusterQuery(ctx, start, "cluster.similar", metric, fmt.Sprintf("k=%d", k), tr, len(res.Matches), res.Partial, nil)
	return res, nil
}

// ClusterStats is the fan-in of per-shard Stats.
type ClusterStats struct {
	PerShard map[string]*mmdb.Stats
	Partial  bool
	Missed   []string
}

// Stats collects every live shard's database statistics.
func (c *Coordinator) Stats(ctx context.Context) (*ClusterStats, error) {
	_, conns := c.snapshot()
	ids := make([]string, len(conns))
	for i, cc := range conns {
		ids[i] = cc.shard.ID()
	}
	vals, ok, missed, err := gather(ctx, c, nil, func(actx context.Context, sh Shard, _ *obs.Span) (*mmdb.Stats, error) {
		return sh.Stats(actx)
	})
	if err != nil {
		return nil, err
	}
	out := &ClusterStats{PerShard: make(map[string]*mmdb.Stats), Missed: missed, Partial: len(missed) > 0}
	j := 0
	for _, id := range ids {
		if contains(missed, id) {
			continue
		}
		if j < len(vals) && ok[j] {
			out.PerShard[id] = vals[j]
		}
		j++
	}
	return out, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// mergeAnswers set-unions per-shard id lists, dropping duplicates (Merge
// replicas can match on two shards) and summing the evaluation stats.
func mergeAnswers(vals []*ShardAnswer, ok []bool, missed []string, tr *obs.Trace) *Result {
	res := &Result{Missed: missed, Partial: len(missed) > 0}
	if res.Partial {
		tr.Count(obs.TClusterPartialResults, 1)
	}
	seen := make(map[uint64]bool)
	var dupes int64
	for i, a := range vals {
		if !ok[i] || a == nil {
			continue
		}
		for _, id := range a.IDs {
			if seen[id] {
				dupes++
				continue
			}
			seen[id] = true
			res.IDs = append(res.IDs, id)
		}
		res.Stats.BinariesChecked += a.Stats.BinariesChecked
		res.Stats.EditedWalked += a.Stats.EditedWalked
		res.Stats.OpsEvaluated += a.Stats.OpsEvaluated
		res.Stats.EditedSkipped += a.Stats.EditedSkipped
	}
	tr.Count(obs.TClusterDuplicatesMerged, dupes)
	sort.Slice(res.IDs, func(i, j int) bool { return res.IDs[i] < res.IDs[j] })
	return res
}

// ensureIDsLocked seeds the global id allocator from the shards' current
// contents (max id + 1). Callers hold insertMu. It needs every shard up —
// allocating ids with part of the id space invisible risks collisions.
func (c *Coordinator) ensureIDsLocked(ctx context.Context) error {
	if c.idSynced {
		return nil
	}
	_, conns := c.snapshot()
	var max uint64
	for _, cc := range conns {
		metas, err := callShard(ctx, c.pol, true, func(actx context.Context) ([]ObjectMeta, error) {
			return cc.shard.List(actx)
		})
		if err != nil {
			return fmt.Errorf("cluster: id sync on shard %s: %w", cc.shard.ID(), err)
		}
		for _, m := range metas {
			if m.ID > max {
				max = m.ID
			}
		}
	}
	c.lastID = max
	c.idSynced = true
	return nil
}

// InsertImage stores a binary image cluster-wide: the coordinator assigns
// the next global id and routes the raster to the id's home shard.
// Returns the id and the shard it landed on. Inserts are serialized so
// cluster id assignment matches single-node insertion order exactly.
func (c *Coordinator) InsertImage(ctx context.Context, name string, img *mmdb.Image) (uint64, string, error) {
	c.insertMu.Lock()
	defer c.insertMu.Unlock()
	for attempt := 0; ; attempt++ {
		if err := c.ensureIDsLocked(ctx); err != nil {
			return 0, "", err
		}
		id := c.lastID + 1
		conn, home := c.connFor(RouteKey(id, 0))
		_, err := callShard(ctx, c.pol, false, func(actx context.Context) (struct{}, error) {
			return struct{}{}, conn.shard.InsertImage(actx, id, name, img)
		})
		if err != nil {
			// A failed insert may still have applied (a replica leader can
			// die after committing but before acking), so the cached
			// watermark is no longer trustworthy; re-seed it from the
			// shards before the next allocation. When the failure is a
			// duplicate id, that stale watermark was the cause — re-sync
			// and retry once with a fresh id.
			c.idSynced = false
			if isDuplicateID(err) && attempt == 0 {
				continue
			}
			return 0, "", err
		}
		c.lastID = id
		return id, home, nil
	}
}

// InsertSequence stores an edited image on its base's home shard (the
// base-affine invariant). Merge targets homed elsewhere are first
// replicated onto that shard under their own ids, so sequence evaluation
// never needs a remote lookup.
func (c *Coordinator) InsertSequence(ctx context.Context, name string, seq *mmdb.Sequence) (uint64, string, error) {
	if seq == nil {
		return 0, "", queryError{fmt.Errorf("cluster: nil sequence")}
	}
	c.insertMu.Lock()
	defer c.insertMu.Unlock()
	if err := c.ensureIDsLocked(ctx); err != nil {
		return 0, "", err
	}
	conn, home := c.connFor(RouteKey(0, seq.BaseID))
	if err := c.replicateTargets(ctx, conn, seq); err != nil {
		return 0, "", err
	}
	var id uint64
	for attempt := 0; ; attempt++ {
		id = c.lastID + 1
		_, err := callShard(ctx, c.pol, false, func(actx context.Context) (struct{}, error) {
			return struct{}{}, conn.shard.InsertSequence(actx, id, name, seq)
		})
		if err == nil {
			break
		}
		// Same ambiguous-outcome rule as InsertImage: the watermark may be
		// stale after any failure; a duplicate id gets one retry with a
		// re-seeded allocator.
		c.idSynced = false
		if isDuplicateID(err) && attempt == 0 {
			if serr := c.ensureIDsLocked(ctx); serr != nil {
				return 0, "", serr
			}
			continue
		}
		return 0, "", err
	}
	c.lastID = id
	return id, home, nil
}

// replicateTargets copies any Merge-target binaries the sequence
// references that are not yet present on the destination shard, keeping
// their global ids (reference replicas).
func (c *Coordinator) replicateTargets(ctx context.Context, dst *shardConn, seq *mmdb.Sequence) error {
	for _, t := range seq.MergeTargets() {
		has, err := callShard(ctx, c.pol, true, func(actx context.Context) (bool, error) {
			return dst.shard.HasObject(actx, t)
		})
		if err != nil {
			return err
		}
		if has {
			continue
		}
		src, srcID := c.connFor(RouteKey(t, 0))
		if src == dst {
			// Target homes here but is absent: the insert below will fail
			// with the shard's own not-found error.
			continue
		}
		img, err := callShard(ctx, c.pol, true, func(actx context.Context) (*mmdb.Image, error) {
			return src.shard.Image(actx, t)
		})
		if err != nil {
			return fmt.Errorf("cluster: fetch merge target %d from %s: %w", t, srcID, err)
		}
		meta, _, err := callShard2(ctx, c.pol, true, func(actx context.Context) (*ObjectMeta, *mmdb.Sequence, error) {
			return src.shard.Object(actx, t)
		})
		if err != nil {
			return fmt.Errorf("cluster: fetch merge target %d metadata from %s: %w", t, srcID, err)
		}
		_, err = callShard(ctx, c.pol, false, func(actx context.Context) (struct{}, error) {
			return struct{}{}, dst.shard.InsertImage(actx, t, meta.Name, img)
		})
		if err != nil {
			return fmt.Errorf("cluster: replicate merge target %d to %s: %w", t, dst.shard.ID(), err)
		}
	}
	return nil
}

// callShard2 is callShard for two-value transports.
func callShard2[A, B any](ctx context.Context, pol Policy, read bool, fn func(context.Context) (A, B, error)) (A, B, error) {
	type pair struct {
		a A
		b B
	}
	p, err := callShard(ctx, pol, read, func(actx context.Context) (pair, error) {
		a, b, err := fn(actx)
		return pair{a, b}, err
	})
	return p.a, p.b, err
}

// observeSeconds times a call into a histogram.
func observeSeconds(h *obs.Histogram) func() {
	start := nowFunc()
	return func() { h.Observe(nowFunc().Sub(start).Seconds()) }
}
