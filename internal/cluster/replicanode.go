package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	mmdb "repro"
)

// ReplicaNode is the in-process replica transport: an InProc shard (the
// read/write surface, with the same Kill/Revive fault injection) plus a
// Replicator (the role runtime). It implements ReplicaConn, so in-process
// replica sets and the failover tests run the exact replication code paths
// the HTTP deployment does, minus the wire.
type ReplicaNode struct {
	*InProc
	rep *Replicator
}

// NewReplicaNode wraps db as replica id. ctx bounds the replication loops.
func NewReplicaNode(ctx context.Context, id string, db *mmdb.DB) *ReplicaNode {
	return &ReplicaNode{InProc: NewInProc(id, db), rep: NewReplicator(ctx, id, db)}
}

// Replicator exposes the node's replication runtime (tests tune and pause
// it).
func (n *ReplicaNode) Replicator() *Replicator { return n.rep }

// WALTail implements LeaderConn. A killed node refuses — followers of a
// dead leader see the same connection failure an HTTP follower would.
func (n *ReplicaNode) WALTail(ctx context.Context, from uint64, max int, wait time.Duration) (mmdb.WALTailResult, error) {
	if err := n.check(ctx); err != nil {
		return mmdb.WALTailResult{}, err
	}
	return n.DB().WALTail(ctx, from, max, wait)
}

// WALStatus implements LeaderConn.
func (n *ReplicaNode) WALStatus(ctx context.Context) (mmdb.WALStats, error) {
	if err := n.check(ctx); err != nil {
		return mmdb.WALStats{}, err
	}
	st, ok := n.DB().WALStats()
	if !ok {
		return mmdb.WALStats{}, fmt.Errorf("cluster: replica %s has no write-ahead log", n.ID())
	}
	return st, nil
}

// ReplStatus implements ReplicaConn.
func (n *ReplicaNode) ReplStatus(ctx context.Context) (ReplStatus, error) {
	if err := n.check(ctx); err != nil {
		return ReplStatus{}, err
	}
	return n.rep.Status(), nil
}

// WaitApplied implements ReplicaConn.
func (n *ReplicaNode) WaitApplied(ctx context.Context, lsn uint64, wait time.Duration) (ReplStatus, error) {
	if err := n.check(ctx); err != nil {
		return ReplStatus{}, err
	}
	return n.rep.WaitApplied(ctx, lsn, wait)
}

// Promote implements ReplicaConn.
func (n *ReplicaNode) Promote(ctx context.Context) error {
	if err := n.check(ctx); err != nil {
		return err
	}
	n.rep.Promote()
	return nil
}

// Follow implements ReplicaConn. The in-process transport follows the
// connection directly; the address is only meaningful over HTTP.
func (n *ReplicaNode) Follow(ctx context.Context, leaderID, leaderAddr string, conn LeaderConn) error {
	if err := n.check(ctx); err != nil {
		return err
	}
	if conn == nil {
		return fmt.Errorf("cluster: in-process follow needs a leader connection")
	}
	n.rep.Follow(leaderID, conn)
	return nil
}

// ReplicatedClusterConfig sizes an in-process replicated cluster.
type ReplicatedClusterConfig struct {
	// Dir is where the backing page stores live (replication requires
	// persistent databases — the WAL is the replication stream).
	Dir string
	// Shards is the number of replica sets; Replicas is members per set
	// including the leader (1 = unreplicated).
	Shards   int
	Replicas int
	// Coord is the coordinator policy.
	Coord Options
	// Tune and TuneSet, when set, adjust each Replicator / ReplicaSet
	// before anything starts (tests shrink timeouts here).
	Tune    func(*Replicator)
	TuneSet func(*ReplicaSet)
}

// InProcReplicaCluster is a fully in-process replicated cluster: a
// coordinator over Shards replica sets of Replicas members each.
type InProcReplicaCluster struct {
	Coord *Coordinator
	Sets  []*ReplicaSet
	Nodes map[string]*ReplicaNode // "s0-r0", "s0-r1", ...
}

// NewReplicatedInProcCluster builds the cluster: one persistent database
// per replica under cfg.Dir, node r0 of each set leading, every follower
// bootstrapped and tailing. ctx bounds all replication loops.
func NewReplicatedInProcCluster(ctx context.Context, cfg ReplicatedClusterConfig) (*InProcReplicaCluster, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	c := &InProcReplicaCluster{Nodes: make(map[string]*ReplicaNode)}
	m := &ShardMap{}
	shards := make(map[string]Shard, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		sid := fmt.Sprintf("s%d", s)
		members := make([]ReplicaMember, 0, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			nid := fmt.Sprintf("%s-r%d", sid, r)
			db, err := mmdb.Open(mmdb.WithPath(filepath.Join(cfg.Dir, nid+".db")))
			if err != nil {
				return nil, fmt.Errorf("cluster: open %s: %w", nid, err)
			}
			node := NewReplicaNode(ctx, nid, db)
			if cfg.Tune != nil {
				cfg.Tune(node.Replicator())
			}
			c.Nodes[nid] = node
			members = append(members, ReplicaMember{ID: nid, Conn: node})
		}
		rs, err := NewReplicaSet(sid, members...)
		if err != nil {
			return nil, err
		}
		if cfg.TuneSet != nil {
			cfg.TuneSet(rs)
		}
		if err := rs.Bootstrap(ctx); err != nil {
			return nil, err
		}
		c.Sets = append(c.Sets, rs)
		m.Shards = append(m.Shards, ShardInfo{ID: sid})
		shards[sid] = rs
	}
	coord, err := New(m, shards, cfg.Coord)
	if err != nil {
		return nil, err
	}
	c.Coord = coord
	return c, nil
}

// Set returns the replica set for shard id (nil if unknown).
func (c *InProcReplicaCluster) Set(shardID string) *ReplicaSet {
	for _, rs := range c.Sets {
		if rs.ID() == shardID {
			return rs
		}
	}
	return nil
}

// StartMonitors starts every set's probe/promote loop.
func (c *InProcReplicaCluster) StartMonitors(ctx context.Context, interval time.Duration) {
	for _, rs := range c.Sets {
		rs.StartMonitor(ctx, interval)
	}
}

// Close stops replication and closes every database.
func (c *InProcReplicaCluster) Close() error {
	var firstErr error
	for _, n := range c.Nodes {
		n.Replicator().Stop()
	}
	for _, n := range c.Nodes {
		if err := n.DB().Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
