package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	mmdb "repro"
	"repro/internal/client"
)

// HTTPReplica is the network replica transport: an HTTPShard plus the
// replication verbs, against an `esidb serve` process that was started
// with replication wired in. It implements ReplicaConn (and therefore
// LeaderConn), so HTTP replica sets and `serve -replica-of` followers run
// the same ReplicaSet/Replicator code as the in-process ones.
type HTTPReplica struct {
	*HTTPShard
	c *client.Client
}

// NewHTTPReplica returns a replica connection named id at baseURL.
// httpClient may be nil for http.DefaultClient.
func NewHTTPReplica(id, baseURL string, httpClient *http.Client) *HTTPReplica {
	sh := NewHTTPShard(id, baseURL, httpClient)
	return &HTTPReplica{HTTPShard: sh, c: sh.c}
}

// WALTail implements LeaderConn. The client maps the server's
// wal_truncated error code back to store.ErrWALTruncated, so the
// replicator's resync trigger works identically over the wire.
func (s *HTTPReplica) WALTail(ctx context.Context, from uint64, max int, wait time.Duration) (mmdb.WALTailResult, error) {
	return s.c.WALTail(ctx, from, max, wait)
}

// WALStatus implements LeaderConn.
func (s *HTTPReplica) WALStatus(ctx context.Context) (mmdb.WALStats, error) {
	st, enabled, err := s.c.WALStats(ctx)
	if err != nil {
		return mmdb.WALStats{}, err
	}
	if !enabled || st == nil {
		return mmdb.WALStats{}, fmt.Errorf("cluster: replica %s has no write-ahead log", s.ID())
	}
	return *st, nil
}

func replStatusFromWire(w client.ReplicationStatus) ReplStatus {
	return ReplStatus{
		ID:         w.ID,
		Role:       w.Role,
		Leader:     w.Leader,
		AppliedLSN: w.AppliedLSN,
		LeaderLSN:  w.LeaderLSN,
		Lag:        w.Lag,
		DurableLSN: w.DurableLSN,
		BaseLSN:    w.BaseLSN,
		Resyncs:    w.Resyncs,
		Epoch:      w.Epoch,
	}
}

// ReplStatus implements ReplicaConn.
func (s *HTTPReplica) ReplStatus(ctx context.Context) (ReplStatus, error) {
	w, err := s.c.ReplicationStatusCtx(ctx, 0, 0)
	return replStatusFromWire(w), err
}

// WaitApplied implements ReplicaConn as a server-side long poll.
func (s *HTTPReplica) WaitApplied(ctx context.Context, lsn uint64, wait time.Duration) (ReplStatus, error) {
	w, err := s.c.ReplicationStatusCtx(ctx, lsn, wait)
	return replStatusFromWire(w), err
}

// Promote implements ReplicaConn.
func (s *HTTPReplica) Promote(ctx context.Context) error {
	return s.c.Promote(ctx)
}

// Follow implements ReplicaConn. Over HTTP the leader travels by address;
// the in-process connection is ignored.
func (s *HTTPReplica) Follow(ctx context.Context, leaderID, leaderAddr string, _ LeaderConn) error {
	if leaderAddr == "" {
		return fmt.Errorf("cluster: http follow needs the leader's address")
	}
	return s.c.Follow(ctx, leaderID, leaderAddr)
}

// ServeReplication adapts a Replicator to the server package's
// structural Replication interface: status values pass through as-is,
// and Follow resolves the leader's address to an HTTP connection. This
// is what `esidb serve` hands to server.WithReplication.
type ServeReplication struct {
	R *Replicator
}

// Status implements server.Replication.
func (a ServeReplication) Status() any { return a.R.Status() }

// WaitApplied implements server.Replication.
func (a ServeReplication) WaitApplied(ctx context.Context, lsn uint64, wait time.Duration) (any, error) {
	return a.R.WaitApplied(ctx, lsn, wait)
}

// Promote implements server.Replication.
func (a ServeReplication) Promote() { a.R.Promote() }

// Follow implements server.Replication.
func (a ServeReplication) Follow(leaderID, addr string) error {
	if addr == "" {
		return fmt.Errorf("cluster: follow needs the leader's address")
	}
	a.R.Follow(leaderID, NewHTTPReplica(leaderID, addr, nil))
	return nil
}
