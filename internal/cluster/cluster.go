// Package cluster shards the database across N partitions and answers
// queries over all of them — the scale-out layer the paper's single-node
// design grows into.
//
// Partitioning is *base-affine*: a consistent-hash ring places every
// binary image by its own id and every edited sequence by its base's id,
// so a BWM main component — the base image plus all edited derivatives
// clustered under it (paper §3.1) — lives entirely on one shard. RBM and
// BWM evaluation then stay shard-local and embarrassingly parallel; the
// only cross-shard work is merging result sets. Range/compound/multirange
// answers merge by set union with dedup; k-NN merges per-shard top-k heaps
// into a global (dist,id)-ordered top-k, which is provably identical to a
// single node's answer because the single-node heap keeps the true
// k-minimum under the same total order.
//
// A Merge operation may reference a binary image homed on another shard;
// the coordinator replicates such targets (same id, same raster) onto the
// referencing shard at insert time, so sequence evaluation never leaves
// the shard. Replicas can make the same id match on two shards, which the
// union dedup folds back out.
//
// Failure handling is degraded, not brittle: a shard that stays down past
// its retry budget is reported in Result.Missed with Partial=true and the
// query answers from the survivors — a subset, never a false positive,
// because every object is evaluated wholly on its home shard. A health
// checker flips shards up→suspect→down and back, published as
// esidb_cluster_shard_up gauges.
package cluster

import (
	"fmt"
	"strings"

	mmdb "repro"
	"repro/internal/obs"
)

// Process-wide transport counters (per-shard latency lives in labeled
// histograms created on first use).
var (
	mRetries    = obs.Default().Counter("esidb_cluster_retries_total")
	mHedges     = obs.Default().Counter("esidb_cluster_hedged_calls_total")
	mResyncs    = obs.Default().Counter("esidb_replica_resyncs_total")
	mPromotions = obs.Default().Counter("esidb_replica_promotions_total")
)

// Result is a merged set-query (range/compound/multirange) answer.
type Result struct {
	// IDs is the deduplicated union of per-shard matches, ascending.
	IDs []uint64
	// Stats sums the per-shard evaluation work.
	Stats mmdb.QueryStats
	// Partial marks a degraded answer; Missed lists the shards that did
	// not contribute (down past their retry budget, or skipped as down).
	Partial bool
	Missed  []string
}

// KNNResult is a merged k-NN answer: the global top-k in (dist,id) order.
type KNNResult struct {
	Matches []mmdb.Match
	Partial bool
	Missed  []string
}

// ParseMode maps the wire mode string to an execution mode by delegating
// to the core mode registry — the same table the HTTP server uses, exposed
// here for the in-process transport and the CLI. The error enumerates
// every valid name.
func ParseMode(s string) (mmdb.Mode, error) {
	m, err := mmdb.ParseMode(s)
	if err != nil {
		return 0, fmt.Errorf("cluster: unknown mode %q (valid: %s)", s, strings.Join(mmdb.ModeNames(), ", "))
	}
	return m, nil
}

// ParseMetric maps the wire metric string to a distance metric.
func ParseMetric(s string) (mmdb.Metric, error) {
	switch s {
	case "", "l1":
		return mmdb.MetricL1, nil
	case "l2":
		return mmdb.MetricL2, nil
	case "intersection":
		return mmdb.MetricIntersection, nil
	default:
		return 0, fmt.Errorf("cluster: unknown metric %q", s)
	}
}
