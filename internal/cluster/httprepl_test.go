package cluster

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	mmdb "repro"
	"repro/internal/dataset"
	"repro/internal/server"
)

// httpNode is one `esidb serve` process stood up in-memory: a file-backed
// database (WAL on), a replication runtime, and the HTTP handler — the
// same wiring `serve -replica-of` does.
type httpNode struct {
	id  string
	db  *mmdb.DB
	rep *Replicator
	ts  *httptest.Server
}

func newHTTPNode(t *testing.T, ctx context.Context, dir, id string) *httpNode {
	t.Helper()
	db, err := mmdb.Open(mmdb.WithPath(filepath.Join(dir, id+".db")))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rep := NewReplicator(ctx, id, db)
	fastTune(rep)
	ts := httptest.NewServer(server.New(db).WithReplication(ServeReplication{R: rep}))
	t.Cleanup(ts.Close)
	return &httpNode{id: id, db: db, rep: rep, ts: ts}
}

func (n *httpNode) member() ReplicaMember {
	return ReplicaMember{ID: n.id, Addr: n.ts.URL, Conn: NewHTTPReplica(n.id, n.ts.URL, nil)}
}

// TestReplicationHTTPEndToEnd runs the whole replication stack over the
// network transport: three serve processes form a replica set, Bootstrap
// wires the followers through POST /v1/follow, writes land through the
// coordinator with the semi-sync ack long-polling /v1/replication, the
// followers converge byte-identically by tailing GET /v1/wal/tail, and
// killing the leader's process fails the set over via POST /v1/promote.
func TestReplicationHTTPEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	dir := t.TempDir()
	leader := newHTTPNode(t, ctx, dir, "s0")
	f1 := newHTTPNode(t, ctx, dir, "s0-r1")
	f2 := newHTTPNode(t, ctx, dir, "s0-r2")

	rs, err := NewReplicaSet("s0", leader.member(), f1.member(), f2.member())
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	m := &ShardMap{Shards: []ShardInfo{{
		ID: "s0", Addr: leader.ts.URL,
		Replicas: []ShardInfo{{ID: "s0-r1", Addr: f1.ts.URL}, {ID: "s0-r2", Addr: f2.ts.URL}},
	}}}
	coord, err := New(m, map[string]Shard{"s0": rs}, Options{Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}

	corp := makeCorpus(4, 2, 77)
	corp.seedCluster(t, coord)

	// Both followers converge on the leader's durable horizon over HTTP.
	lwst, err := NewHTTPReplica("s0", leader.ts.URL, nil).WALStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*httpNode{f1, f2} {
		st, err := NewHTTPReplica(f.id, f.ts.URL, nil).WaitApplied(ctx, lwst.DurableLSN, 10*time.Second)
		if err != nil {
			t.Fatalf("follower %s: %v", f.id, err)
		}
		if st.AppliedLSN < lwst.DurableLSN {
			t.Fatalf("follower %s stuck at %d < %d", f.id, st.AppliedLSN, lwst.DurableLSN)
		}
	}
	lids := dbObjectIDs(leader.db)
	for _, f := range []*httpNode{f1, f2} {
		if fids := dbObjectIDs(f.db); !sameUint64s(lids, fids) {
			t.Fatalf("follower %s census diverged: leader %v follower %v", f.id, lids, fids)
		}
		for _, pq := range parityQueries {
			lres, err := leader.db.QueryCompound(pq.text, mmdb.ModeBWM)
			if err != nil {
				t.Fatal(err)
			}
			fres, err := f.db.QueryCompound(pq.text, mmdb.ModeBWM)
			if err != nil {
				t.Fatal(err)
			}
			if !sameUint64s(lres.IDs, fres.IDs) {
				t.Fatalf("follower %s query %s diverged", f.id, pq.name)
			}
		}
	}

	// Coordinator answers are whole, and the set's probe sees every
	// member up with the leader in the leader role.
	res, err := coord.Query(ctx, "at least 10% red", "bwm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial result over healthy replica set: missed %v", res.Missed)
	}
	for _, ri := range rs.Probe(ctx) {
		if !ri.Up {
			t.Fatalf("replica %s not up in probe", ri.ID)
		}
		if ri.ID == "s0" && ri.Role != RoleLeader {
			t.Fatalf("leader probed as %s", ri.Role)
		}
	}

	// Kill the leader's process and fail over; the surviving follower
	// pair must elect the most-caught-up one and keep taking writes.
	leader.ts.Close()
	newLeader, err := rs.PromoteNow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if newLeader != "s0-r1" && newLeader != "s0-r2" {
		t.Fatalf("unexpected new leader %q", newLeader)
	}
	post := dataset.Flags(1, 16, 12, 99)[0]
	id, _, err := coord.InsertImage(ctx, "post-failover", post.Img)
	if err != nil {
		t.Fatalf("insert after failover: %v", err)
	}
	for _, f := range []*httpNode{f1, f2} {
		ok, err := NewHTTPReplica(f.id, f.ts.URL, nil).HasObject(ctx, id)
		if err != nil {
			t.Fatalf("replica %s: %v", f.id, err)
		}
		if !ok {
			t.Fatalf("replica %s missing post-failover object %d", f.id, id)
		}
	}
}
