package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	mmdb "repro"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

// testPolicy keeps retry/backoff latency out of the test clock.
func testPolicy() Policy {
	return Policy{Timeout: 2 * time.Second, Retries: 1, Backoff: time.Millisecond}
}

// corpus is a deterministic dataset replayed identically into a single
// node and a cluster, so both assign the same ids in the same order.
type corpus struct {
	flags   []dataset.NamedImage
	scripts [][]*mmdb.Sequence // per base, referencing base ids 1..len(flags)
}

func makeCorpus(nBase, perBase int, seed int64) *corpus {
	flags := dataset.Flags(nBase, 24, 18, seed)
	aug := dataset.NewAugmenter(dataset.AugmentConfig{
		PerBase:         perBase,
		OpsPerImage:     4,
		NonWideningFrac: 0.4, // plenty of Merge targets → cross-shard replicas
		Seed:            seed + 1,
	})
	c := &corpus{flags: flags, scripts: make([][]*mmdb.Sequence, nBase)}
	for i := range flags {
		base := uint64(i + 1)
		others := make([]uint64, 0, nBase-1)
		for j := 1; j <= nBase; j++ {
			if uint64(j) != base {
				others = append(others, uint64(j))
			}
		}
		c.scripts[i] = aug.ScriptsFor(base, flags[i].Img, others)
	}
	return c
}

func (c *corpus) seedSingle(t *testing.T) *mmdb.DB {
	t.Helper()
	db, err := mmdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i, f := range c.flags {
		id, err := db.InsertImage(f.Name, f.Img)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i+1) {
			t.Fatalf("single node assigned id %d to base %d", id, i+1)
		}
	}
	for i, f := range c.flags {
		for _, seq := range c.scripts[i] {
			if _, err := db.InsertEdited(f.Name+"-edit", seq.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func (c *corpus) seedCluster(t *testing.T, coord *Coordinator) {
	t.Helper()
	ctx := context.Background()
	for i, f := range c.flags {
		id, _, err := coord.InsertImage(ctx, f.Name, f.Img)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i+1) {
			t.Fatalf("cluster assigned id %d to base %d", id, i+1)
		}
	}
	for i, f := range c.flags {
		for _, seq := range c.scripts[i] {
			if _, _, err := coord.InsertSequence(ctx, f.Name+"-edit", seq.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// newInProcCluster builds an n-shard embedded cluster with a test policy
// and hands back the shards for Kill/inspection.
func newInProcCluster(t *testing.T, n int) (*Coordinator, []*InProc) {
	t.Helper()
	m := &ShardMap{}
	shards := make(map[string]Shard, n)
	procs := make([]*InProc, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		db, err := mmdb.Open()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		p := NewInProc(id, db)
		m.Shards = append(m.Shards, ShardInfo{ID: id})
		shards[id] = p
		procs[i] = p
	}
	coord, err := New(m, shards, Options{Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	return coord, procs
}

var parityQueries = []struct{ name, text string }{
	{"range", "at least 10% red"},
	{"range-narrow", "between 5% and 60% blue"},
	{"compound-and", "at least 5% red and at most 80% green"},
	{"compound-or", "at least 40% red or at least 40% blue"},
}

// TestClusterQueryParity is the differential acceptance test: a 3-shard
// cluster with every shard up answers range, compound, multirange and
// k-NN queries identically to a single node holding all the data.
func TestClusterQueryParity(t *testing.T) {
	c := makeCorpus(9, 3, 42)
	single := c.seedSingle(t)
	coord, _ := newInProcCluster(t, 3)
	c.seedCluster(t, coord)
	ctx := context.Background()

	for _, mode := range []string{"bwm", "rbm", "indexed"} {
		m, _ := ParseMode(mode)
		for _, q := range parityQueries {
			want, err := single.QueryCompound(q.text, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Query(ctx, q.text, mode, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", mode, q.name, err)
			}
			if got.Partial || len(got.Missed) != 0 {
				t.Fatalf("%s/%s: unexpected partial result", mode, q.name)
			}
			if !reflect.DeepEqual(got.IDs, want.IDs) {
				t.Fatalf("%s/%s: cluster %v != single %v", mode, q.name, got.IDs, want.IDs)
			}
		}

		mq := mmdb.MultiRange{Bins: []int{0, 1, 2}, PctMin: 0, PctMax: 0.9}
		want, err := single.RangeQueryMulti(mq, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.MultiRange(ctx, mq.Bins, mq.PctMin, mq.PctMax, mode, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.IDs, want.IDs) {
			t.Fatalf("%s/multirange: cluster %v != single %v", mode, got.IDs, want.IDs)
		}
	}

	for _, metric := range []string{"l1", "l2", "intersection"} {
		met, _ := ParseMetric(metric)
		for _, k := range []int{1, 5, 20} {
			probe := c.flags[2].Img
			want, _, err := single.QueryByExample(probe, k, met)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Similar(ctx, probe, k, metric, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Partial {
				t.Fatalf("%s/k=%d: unexpected partial", metric, k)
			}
			if !reflect.DeepEqual(got.Matches, want) {
				t.Fatalf("%s/k=%d: cluster %v != single %v", metric, k, got.Matches, want)
			}
		}
	}
}

// TestClusterBaseAffinity verifies the partitioning invariant: every
// edited object lives on the same shard as its base, and ids never appear
// on two shards except as merge-target replicas (binaries).
func TestClusterBaseAffinity(t *testing.T) {
	c := makeCorpus(8, 3, 7)
	coord, procs := newInProcCluster(t, 3)
	c.seedCluster(t, coord)
	ctx := context.Background()

	ring, _ := coord.snapshot()
	seenEdited := make(map[uint64]string)
	for _, p := range procs {
		metas, err := p.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range metas {
			if m.Kind != "edited" {
				continue
			}
			if prev, dup := seenEdited[m.ID]; dup {
				t.Fatalf("edited %d on both %s and %s", m.ID, prev, p.ID())
			}
			seenEdited[m.ID] = p.ID()
			if home := ring.ShardFor(RouteKey(m.ID, m.BaseID)); home != p.ID() {
				t.Fatalf("edited %d (base %d) on %s, home is %s", m.ID, m.BaseID, p.ID(), home)
			}
			has, err := p.HasObject(ctx, m.BaseID)
			if err != nil {
				t.Fatal(err)
			}
			if !has {
				t.Fatalf("edited %d on %s without its base %d", m.ID, p.ID(), m.BaseID)
			}
		}
	}
	if len(seenEdited) == 0 {
		t.Fatal("corpus produced no edited objects")
	}
}

// TestClusterDuplicatesMerged forces a merge-target replica to match on
// two shards and checks the union folds it out (and counts it).
func TestClusterDuplicatesMerged(t *testing.T) {
	c := makeCorpus(8, 3, 42)
	coord, procs := newInProcCluster(t, 3)
	c.seedCluster(t, coord)

	// Find a binary present on more than one shard (a replica).
	ctx := context.Background()
	count := make(map[uint64]int)
	for _, p := range procs {
		metas, err := p.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range metas {
			if m.Kind == "binary" {
				count[m.ID]++
			}
		}
	}
	replicated := false
	for _, n := range count {
		if n > 1 {
			replicated = true
		}
	}
	if !replicated {
		t.Skip("corpus produced no cross-shard merge targets; widen NonWideningFrac")
	}

	// A query matching everything must still return each id once.
	tr := obs.NewTrace()
	got, err := coord.Query(ctx, "at least 0% red", "bwm", tr)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, id := range got.IDs {
		if seen[id] {
			t.Fatalf("duplicate id %d in merged result", id)
		}
		seen[id] = true
	}
	if tr.Counters()[obs.TClusterDuplicatesMerged] == 0 {
		t.Fatal("expected merged duplicates to be counted")
	}
}

// TestClusterPartial kills one shard and checks degraded mode: Partial set,
// the dead shard listed, the answer a subset of the full one — never an
// error, never a false positive.
func TestClusterPartial(t *testing.T) {
	c := makeCorpus(9, 3, 11)
	single := c.seedSingle(t)
	coord, procs := newInProcCluster(t, 3)
	c.seedCluster(t, coord)
	ctx := context.Background()

	full, err := single.QueryCompound("at least 0% red", mmdb.ModeBWM)
	if err != nil {
		t.Fatal(err)
	}
	inFull := make(map[uint64]bool, len(full.IDs))
	for _, id := range full.IDs {
		inFull[id] = true
	}

	procs[1].Kill()
	tr := obs.NewTrace()
	got, err := coord.Query(ctx, "at least 0% red", "bwm", tr)
	if err != nil {
		t.Fatalf("degraded query must not error: %v", err)
	}
	if !got.Partial || !reflect.DeepEqual(got.Missed, []string{"s1"}) {
		t.Fatalf("want Partial with missed [s1], got partial=%v missed=%v", got.Partial, got.Missed)
	}
	if len(got.IDs) == 0 || len(got.IDs) >= len(full.IDs) {
		t.Fatalf("degraded answer should be a proper subset: %d of %d", len(got.IDs), len(full.IDs))
	}
	for _, id := range got.IDs {
		if !inFull[id] {
			t.Fatalf("false positive %d in degraded answer", id)
		}
	}
	if tr.Counters()[obs.TClusterPartialResults] != 1 || tr.Counters()[obs.TClusterShardsFailed] != 1 {
		t.Fatalf("trace counters: %v", tr.Counters())
	}

	// k-NN degrades the same way.
	knn, err := coord.Similar(ctx, c.flags[0].Img, 5, "l1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !knn.Partial || len(knn.Missed) != 1 {
		t.Fatalf("knn: want partial with one missed shard, got %+v", knn)
	}

	procs[1].Revive()
	got, err = coord.Query(ctx, "at least 0% red", "bwm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || !reflect.DeepEqual(got.IDs, full.IDs) {
		t.Fatalf("revived cluster should answer fully again")
	}
}

// TestClusterAllShardsDown: a fully dead cluster is an outage (error), not
// an empty partial success.
func TestClusterAllShardsDown(t *testing.T) {
	coord, procs := newInProcCluster(t, 3)
	for _, p := range procs {
		p.Kill()
	}
	if _, err := coord.Query(context.Background(), "at least 0% red", "bwm", nil); err == nil {
		t.Fatal("want error when every shard is down")
	}
}

// TestClusterQueryErrors: deterministic bad requests fail the whole query
// on a healthy cluster instead of degrading.
func TestClusterQueryErrors(t *testing.T) {
	c := makeCorpus(4, 1, 3)
	coord, _ := newInProcCluster(t, 3)
	c.seedCluster(t, coord)
	ctx := context.Background()
	if _, err := coord.Query(ctx, "gibberish query", "bwm", nil); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := coord.Query(ctx, "at least 0% red", "warp", nil); err == nil {
		t.Fatal("want unknown-mode error")
	}
	res, err := coord.Query(ctx, "at least 0% red", "bwm", nil)
	if err != nil || res.Partial {
		t.Fatalf("healthy query after bad ones: %v partial=%v", err, res.Partial)
	}
}

// TestClusterContextCanceled: cancellation is the caller's doing and must
// surface as an error, not a partial answer blaming the shards.
func TestClusterContextCanceled(t *testing.T) {
	c := makeCorpus(4, 1, 3)
	coord, _ := newInProcCluster(t, 3)
	c.seedCluster(t, coord)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coord.Query(ctx, "at least 0% red", "bwm", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// flakyShard fails its first n calls with a transport-style error, then
// delegates — exercising the retry path.
type flakyShard struct {
	*InProc
	remaining atomic.Int32
}

func (f *flakyShard) Query(ctx context.Context, text, mode string, sp *obs.Span) (*ShardAnswer, error) {
	if f.remaining.Add(-1) >= 0 {
		return nil, store.ErrClosed
	}
	return f.InProc.Query(ctx, text, mode, sp)
}

// TestClusterRetry: a shard that fails once inside the retry budget still
// contributes, so the answer is complete, not partial.
func TestClusterRetry(t *testing.T) {
	c := makeCorpus(6, 2, 5)
	single := c.seedSingle(t)
	coord, procs := newInProcCluster(t, 3)
	c.seedCluster(t, coord)

	// Swap shard s0's transport for a flaky wrapper after seeding.
	flaky := &flakyShard{InProc: procs[0]}
	flaky.remaining.Store(1)
	coord.mu.Lock()
	for i, cc := range coord.conns {
		if cc.shard.ID() == "s0" {
			coord.conns[i] = newShardConn(flaky)
			coord.byID["s0"] = coord.conns[i]
		}
	}
	coord.mu.Unlock()

	before := mRetries.Value()
	want, err := single.QueryCompound("at least 5% red", mmdb.ModeBWM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Query(context.Background(), "at least 5% red", "bwm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("retry should have healed the flake")
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) {
		t.Fatalf("cluster %v != single %v", got.IDs, want.IDs)
	}
	if mRetries.Value() <= before {
		t.Fatal("expected the retry counter to move")
	}
}

// TestClusterHealth drives the state machine: consecutive failures mark a
// shard suspect then down, an active health loop makes queries skip it,
// and recovery brings it back.
func TestClusterHealth(t *testing.T) {
	c := makeCorpus(6, 2, 9)
	coord, procs := newInProcCluster(t, 3)
	c.seedCluster(t, coord)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	coord.StartHealth(ctx, time.Hour) // immediate probe; ticker effectively off
	if st := coord.Health()["s2"]; st != StateUp {
		t.Fatalf("s2 should start up, got %v", st)
	}

	procs[2].Kill()
	coord.CheckNow(ctx)
	if st := coord.Health()["s2"]; st != StateSuspect {
		t.Fatalf("after 1 failure want suspect, got %v", st)
	}
	coord.CheckNow(ctx)
	coord.CheckNow(ctx)
	if st := coord.Health()["s2"]; st != StateDown {
		t.Fatalf("after 3 failures want down, got %v", st)
	}
	if ds := coord.DownShards(); !reflect.DeepEqual(ds, []string{"s2"}) {
		t.Fatalf("DownShards = %v", ds)
	}

	// A down shard is skipped, not retried: the query is partial and the
	// retry counter does not move.
	before := mRetries.Value()
	got, err := coord.Query(ctx, "at least 0% red", "bwm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Partial || !reflect.DeepEqual(got.Missed, []string{"s2"}) {
		t.Fatalf("want partial missing s2, got partial=%v missed=%v", got.Partial, got.Missed)
	}
	if mRetries.Value() != before {
		t.Fatal("down shard should be skipped without retries")
	}

	procs[2].Revive()
	coord.CheckNow(ctx)
	if st := coord.Health()["s2"]; st != StateUp {
		t.Fatalf("revived shard should be up, got %v", st)
	}
	got, err = coord.Query(ctx, "at least 0% red", "bwm", nil)
	if err != nil || got.Partial {
		t.Fatalf("recovered cluster should answer fully: %v partial=%v", err, got.Partial)
	}
}

// TestClusterHTTPParity runs the whole stack over the network transport:
// three httptest `esidb serve` handlers, inserts through the coordinator,
// query parity with a single node, then degraded mode by closing a server.
func TestClusterHTTPParity(t *testing.T) {
	c := makeCorpus(8, 2, 21)
	single := c.seedSingle(t)

	m := &ShardMap{}
	shards := make(map[string]Shard, 3)
	var servers []*httptest.Server
	for i := 0; i < 3; i++ {
		db, err := mmdb.Open()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		ts := httptest.NewServer(server.New(db))
		t.Cleanup(ts.Close)
		servers = append(servers, ts)
		id := fmt.Sprintf("s%d", i)
		m.Shards = append(m.Shards, ShardInfo{ID: id, Addr: ts.URL})
		shards[id] = NewHTTPShard(id, ts.URL, ts.Client())
	}
	pol := testPolicy()
	pol.Backoff = time.Millisecond
	coord, err := New(m, shards, Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	c.seedCluster(t, coord)
	ctx := context.Background()

	want, err := single.QueryCompound("at least 5% red and at most 90% blue", mmdb.ModeBWM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Query(ctx, "at least 5% red and at most 90% blue", "bwm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || !reflect.DeepEqual(got.IDs, want.IDs) {
		t.Fatalf("http cluster %v (partial=%v) != single %v", got.IDs, got.Partial, want.IDs)
	}

	// The indexed mode string must flow through the /v1 wire unchanged and
	// answer identically (the S-tree is exact).
	gotIdx, err := coord.Query(ctx, "at least 5% red and at most 90% blue", "indexed", nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotIdx.Partial || !reflect.DeepEqual(gotIdx.IDs, want.IDs) {
		t.Fatalf("http cluster indexed %v (partial=%v) != single %v", gotIdx.IDs, gotIdx.Partial, want.IDs)
	}

	wantKNN, _, err := single.QueryByExample(c.flags[1].Img, 7, mmdb.MetricL1)
	if err != nil {
		t.Fatal(err)
	}
	gotKNN, err := coord.Similar(ctx, c.flags[1].Img, 7, "l1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotKNN.Matches, wantKNN) {
		t.Fatalf("http knn %v != single %v", gotKNN.Matches, wantKNN)
	}

	// Bad request over HTTP (400) is a query error: whole call fails.
	if _, err := coord.Query(ctx, "gibberish", "bwm", nil); err == nil {
		t.Fatal("want parse error through HTTP transport")
	}

	// A dead server degrades to partial.
	servers[0].Close()
	got, err = coord.Query(ctx, "at least 5% red and at most 90% blue", "bwm", nil)
	if err != nil {
		t.Fatalf("degraded http query must not error: %v", err)
	}
	if !got.Partial || !reflect.DeepEqual(got.Missed, []string{"s0"}) {
		t.Fatalf("want partial missing s0, got partial=%v missed=%v", got.Partial, got.Missed)
	}
}

// TestClusterStats aggregates per-shard stats and accounts for every
// object exactly once per shard it lives on.
func TestClusterStats(t *testing.T) {
	c := makeCorpus(6, 2, 13)
	coord, _ := newInProcCluster(t, 3)
	c.seedCluster(t, coord)
	st, err := coord.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Partial || len(st.PerShard) != 3 {
		t.Fatalf("stats: %+v", st)
	}
	totalBin := 0
	for _, s := range st.PerShard {
		totalBin += s.Catalog.Binaries
	}
	if totalBin < len(c.flags) {
		t.Fatalf("shards report %d binaries, corpus has %d bases", totalBin, len(c.flags))
	}
}

// TestClusterInsertIDSync: a coordinator built over already-populated
// shards continues the id sequence instead of colliding.
func TestClusterInsertIDSync(t *testing.T) {
	c := makeCorpus(5, 1, 17)
	coord, procs := newInProcCluster(t, 3)
	c.seedCluster(t, coord)

	// Rebuild a fresh coordinator over the same shards (restart scenario).
	m := coord.Map()
	shards := make(map[string]Shard, len(procs))
	for _, p := range procs {
		shards[p.ID()] = p
	}
	coord2, err := New(m, shards, Options{Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := coord2.InsertImage(context.Background(), "late", c.flags[0].Img)
	if err != nil {
		t.Fatal(err)
	}
	var max uint64
	for _, p := range procs {
		metas, err := p.List(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, mt := range metas {
			if mt.ID > max {
				max = mt.ID
			}
		}
	}
	if id != max {
		t.Fatalf("restarted coordinator assigned %d, cluster max is %d", id, max)
	}
}
