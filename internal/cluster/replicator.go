package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	mmdb "repro"
	"repro/internal/obs"
	"repro/internal/store"
)

// WAL shipping, node side. A Replicator owns one database's replication
// role: as a follower it runs the tail loop — pull durable frames from the
// leader's log, apply them through the idempotent redo machinery, advance
// the applied cursor — and as a leader it is passive (the database's own
// WAL serves tails). The same runtime backs both transports: in-process
// replica sets hand it the leader node directly, `esidb serve -replica-of`
// hands it an HTTP connection to the leader process.
//
// LSN contract: LSNs are per-leader. A follower's applied LSN is a cursor
// into the *current* leader's log, nothing more. When the leader changes
// (promotion) or the cursor falls below the leader's checkpoint floor
// (ErrWALTruncated), the follower re-seeds: snapshot-copy the leader's
// objects, then tail from the floor sampled before the copy began. The
// copy/replay overlap is harmless because every record carries its full
// post-state and replays idempotently.

// LeaderConn is what a follower needs from its leader: the snapshot read
// surface plus the log tail. Both transports provide it — an in-process
// replica node directly, an HTTP replica via internal/client.
type LeaderConn interface {
	Shard
	// WALTail serves durable log frames above the cursor (long-polling up
	// to wait), mmdb.ErrWALTruncated below the checkpoint floor.
	WALTail(ctx context.Context, from uint64, max int, wait time.Duration) (mmdb.WALTailResult, error)
	// WALStatus snapshots the leader's log counters (durable horizon,
	// checkpoint floor).
	WALStatus(ctx context.Context) (mmdb.WALStats, error)
}

// ReplStatus is one replica's replication state, served over
// /v1/replication and folded into routing and promotion decisions.
type ReplStatus struct {
	ID string `json:"id,omitempty"`
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// Leader names the leader this replica follows (followers only).
	Leader string `json:"leader,omitempty"`
	// AppliedLSN is the last leader LSN applied locally (followers); for a
	// leader it equals DurableLSN.
	AppliedLSN uint64 `json:"applied_lsn"`
	// LeaderLSN is the leader's durable horizon as of the last tail page —
	// Lag = LeaderLSN - AppliedLSN.
	LeaderLSN uint64 `json:"leader_lsn"`
	Lag       uint64 `json:"lag"`
	// DurableLSN and BaseLSN describe this replica's *own* log (the tail
	// surface it would serve if promoted).
	DurableLSN uint64 `json:"durable_lsn"`
	BaseLSN    uint64 `json:"base_lsn"`
	// Resyncs counts snapshot re-seeds (bootstrap, truncation, retarget).
	Resyncs int64 `json:"resyncs"`
	// Epoch increments on every role or leader change.
	Epoch int64 `json:"epoch"`
}

// RoleLeader and RoleFollower are the ReplStatus.Role values.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
)

// Replicator drives one database's replication role. Safe for concurrent
// use; the tail loop runs on its own goroutine per Follow call, retired by
// epoch when the role changes.
type Replicator struct {
	id string
	db *mmdb.DB

	// Tunables (set before the first Follow; tests shrink them).
	TailBatch int           // frames per tail page (0 = store default)
	PollWait  time.Duration // leader long-poll window per tail call
	Backoff   time.Duration // sleep after a leader error

	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	leader     LeaderConn    // guarded by mu; nil while leader
	leaderName string        // guarded by mu
	epoch      int64         // guarded by mu; bumps retire old loops
	cursor     uint64        // guarded by mu; published via advanceCursor, Follow
	wake       chan struct{} // guarded by mu

	// applied mirrors cursor for lock-free readers.
	// published via advanceCursor, Follow
	applied atomic.Uint64
	// leaderLSN is the leader durable horizon from the last tail page.
	// published via storeLeaderLSN, Follow
	leaderLSN atomic.Uint64
	// resyncs counts snapshot re-seeds.
	// published via resync
	resyncs atomic.Int64
	paused  atomic.Bool

	lagGauge  *obs.Gauge
	roleGauge *obs.Gauge
}

// NewReplicator wraps db as replica id, initially in the leader role
// (following nobody). ctx bounds every background loop the replicator ever
// starts.
func NewReplicator(ctx context.Context, id string, db *mmdb.DB) *Replicator {
	rctx, cancel := context.WithCancel(ctx)
	reg := obs.Default()
	r := &Replicator{
		id:        id,
		db:        db,
		PollWait:  2 * time.Second,
		Backoff:   50 * time.Millisecond,
		ctx:       rctx,
		cancel:    cancel,
		wake:      make(chan struct{}),
		lagGauge:  reg.Gauge(fmt.Sprintf("esidb_replica_lag{replica=%q}", id)),
		roleGauge: reg.Gauge(fmt.Sprintf("esidb_replica_role{replica=%q}", id)),
	}
	r.roleGauge.Set(1)
	return r
}

// ID returns the replica id.
func (r *Replicator) ID() string { return r.id }

// DB exposes the replicated database.
func (r *Replicator) DB() *mmdb.DB { return r.db }

// Stop retires every loop. The database itself stays open.
func (r *Replicator) Stop() { r.cancel() }

// Follow (re)targets the replicator at a leader and starts the tail loop.
// The previous loop, if any, retires at its next epoch check. The cursor
// resets: against a new leader the old cursor means nothing (LSNs are
// per-leader), and tailing from zero either replays the new leader's
// retained log idempotently or trips ErrWALTruncated into a full resync.
func (r *Replicator) Follow(leaderName string, conn LeaderConn) {
	r.mu.Lock()
	r.epoch++
	e := r.epoch
	r.leader, r.leaderName = conn, leaderName
	r.cursor = 0
	r.applied.Store(0)
	r.leaderLSN.Store(0) // the old leader's horizon means nothing here
	r.roleGauge.Set(0)
	r.mu.Unlock()
	go r.tailLoop(e, conn)
}

// Promote makes this replica a leader: the tail loop retires and the
// database's own WAL becomes the authoritative log. Idempotent.
func (r *Replicator) Promote() {
	r.mu.Lock()
	if r.leader != nil {
		r.epoch++
		r.leader, r.leaderName = nil, ""
	}
	r.roleGauge.Set(1)
	r.lagGauge.Set(0)
	r.mu.Unlock()
	r.notify()
}

// Pause suspends the tail loop without retargeting it — the follower
// stops applying and falls behind the leader. Fault-injection hook for
// freshness-bound tests; Resume lets it catch back up.
func (r *Replicator) Pause() { r.paused.Store(true) }

// Resume undoes Pause.
func (r *Replicator) Resume() { r.paused.Store(false) }

// notify wakes WaitApplied callers after the applied cursor (or role)
// changes.
func (r *Replicator) notify() {
	r.mu.Lock()
	close(r.wake)
	r.wake = make(chan struct{})
	r.mu.Unlock()
}

// current reports whether epoch e is still the live loop.
func (r *Replicator) current(e int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch == e && r.ctx.Err() == nil
}

// Status snapshots the replica's replication state.
func (r *Replicator) Status() ReplStatus {
	r.mu.Lock()
	leaderName := r.leaderName
	follower := r.leader != nil
	r.mu.Unlock()
	st := ReplStatus{ID: r.id, Role: RoleLeader, Resyncs: r.resyncs.Load()}
	if wst, ok := r.db.WALStats(); ok {
		st.DurableLSN, st.BaseLSN = wst.DurableLSN, wst.BaseLSN
	}
	r.mu.Lock()
	st.Epoch = r.epoch
	r.mu.Unlock()
	if !follower {
		st.AppliedLSN, st.LeaderLSN = st.DurableLSN, st.DurableLSN
		return st
	}
	st.Role, st.Leader = RoleFollower, leaderName
	st.AppliedLSN = r.applied.Load()
	st.LeaderLSN = r.leaderLSN.Load()
	if st.LeaderLSN > st.AppliedLSN {
		st.Lag = st.LeaderLSN - st.AppliedLSN
	}
	return st
}

// WaitApplied blocks until the replica has applied at least lsn of its
// leader's log, the wait elapses, or ctx is done. It returns the status at
// return time; the caller checks AppliedLSN — an elapsed wait is not an
// error. A leader returns immediately, but its AppliedLSN is its *own*
// durable LSN — a different LSN space from the lsn argument — so callers
// comparing against another leader's LSN must check Role before trusting
// the comparison (ReplicaSet.ackWrite does). This is the semi-synchronous
// ack seam: a replicated write is acknowledged once some follower's
// WaitApplied(write LSN) returns satisfied.
func (r *Replicator) WaitApplied(ctx context.Context, lsn uint64, wait time.Duration) (ReplStatus, error) {
	var deadline <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		deadline = t.C
	}
	for {
		st := r.Status()
		if st.Role == RoleLeader || st.AppliedLSN >= lsn {
			return st, nil
		}
		r.mu.Lock()
		wake := r.wake
		r.mu.Unlock()
		// Re-check after capturing the channel so an advance between the
		// status read and the capture cannot be missed.
		if r.applied.Load() >= lsn {
			return r.Status(), nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-r.ctx.Done():
			return st, r.ctx.Err()
		case <-deadline:
			return r.Status(), nil
		case <-wake:
		}
	}
}

// tailLoop is the follower's life: pull a page, apply it, advance, repeat.
// Truncation (and any apply failure) heals through a full resync. The loop
// retires silently when its epoch is superseded or the replicator stops.
func (r *Replicator) tailLoop(e int64, leader LeaderConn) {
	batch := r.TailBatch
	if batch <= 0 {
		batch = store.DefaultTailBatch
	}
	for r.current(e) {
		if r.paused.Load() {
			// Keep the lag view honest while applying is suspended: poll
			// the leader's durable horizon without consuming frames.
			if wst, err := leader.WALStatus(r.ctx); err == nil {
				if !r.storeLeaderLSN(e, wst.DurableLSN) {
					return
				}
				r.publishLag()
			}
			r.sleep()
			continue
		}
		r.mu.Lock()
		cursor := r.cursor
		r.mu.Unlock()
		res, err := leader.WALTail(r.ctx, cursor, batch, r.PollWait)
		if !r.current(e) {
			return
		}
		switch {
		case err == nil:
			if applyErr := r.applyPage(e, res); applyErr != nil {
				// A record that does not apply cleanly means the cursor and
				// the snapshot disagree; re-seed rather than diverge.
				if !r.resyncOrBackoff(e, leader) {
					return
				}
			}
		case errors.Is(err, store.ErrWALTruncated):
			if !r.resyncOrBackoff(e, leader) {
				return
			}
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			if r.ctx.Err() != nil {
				return
			}
			r.sleep()
		default:
			// Leader unreachable (or closed): keep trying until promotion
			// retires this epoch.
			r.sleep()
		}
	}
}

// applyPage applies one tail page and advances the cursor. Partial
// progress is kept — the cursor moves per frame, so a failure resumes (or
// resyncs) from the exact frame that failed.
func (r *Replicator) applyPage(e int64, res mmdb.WALTailResult) error {
	if !r.storeLeaderLSN(e, res.DurableLSN) {
		return nil
	}
	for _, fr := range res.Frames {
		if !r.current(e) {
			return nil
		}
		if r.paused.Load() {
			// Frame-granular pause: unapplied frames stay behind the
			// cursor and re-read on resume.
			r.publishLag()
			return nil
		}
		if err := r.db.ApplyRedoRecord(r.ctx, fr.Payload); err != nil {
			r.publishLag()
			return err
		}
		if !r.advanceCursor(e, fr.LSN) {
			return nil
		}
		r.notify()
	}
	r.publishLag()
	return nil
}

// advanceCursor publishes one applied frame for epoch e. The epoch check
// and the stores share the critical section, so a retired loop (or a
// resync racing a Follow) can never publish its cursor or applied counter
// into the next epoch's state. Reports whether the advance ran.
func (r *Replicator) advanceCursor(e int64, lsn uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epoch != e {
		return false
	}
	r.cursor = lsn
	r.applied.Store(lsn)
	return true
}

// storeLeaderLSN publishes the leader's durable horizon for epoch e under
// the same guard (a retired loop must not overwrite the live epoch's lag
// view). Reports whether the store ran.
func (r *Replicator) storeLeaderLSN(e int64, lsn uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.epoch != e {
		return false
	}
	r.leaderLSN.Store(lsn)
	return true
}

func (r *Replicator) publishLag() {
	applied, leader := r.applied.Load(), r.leaderLSN.Load()
	if leader > applied {
		r.lagGauge.Set(float64(leader - applied))
	} else {
		r.lagGauge.Set(0)
	}
}

// resyncOrBackoff runs a snapshot resync, sleeping on failure. Returns
// false when the loop should retire.
func (r *Replicator) resyncOrBackoff(e int64, leader LeaderConn) bool {
	if err := r.resync(e, leader); err != nil {
		if !r.current(e) {
			return false
		}
		r.sleep()
	}
	return r.current(e)
}

func (r *Replicator) sleep() {
	select {
	case <-r.ctx.Done():
	case <-time.After(r.Backoff):
	}
}

// resync re-seeds the follower from a leader snapshot: sample the
// checkpoint floor first, copy every object, then tail from the floor.
// Records between the floor sample and the copy's reads are either visible
// to the copy or replayed from the log afterwards — both end in the same
// state because records are idempotent and carry their full post-state.
func (r *Replicator) resync(e int64, leader LeaderConn) error {
	if !r.current(e) {
		return nil
	}
	ctx := r.ctx
	wst, err := leader.WALStatus(ctx)
	if err != nil {
		return err
	}
	from := wst.BaseLSN
	metas, err := leader.List(ctx)
	if err != nil {
		return err
	}
	onLeader := make(map[uint64]bool, len(metas))
	for _, m := range metas {
		onLeader[m.ID] = true
	}
	// Drop every local edited object: UpdateSeq mutations below the floor
	// are invisible to the tail, so a kept edited object could be stale.
	// (Binaries are immutable after insert — present means current.)
	for _, id := range r.db.EditedIDs() {
		if err := r.db.DeleteCtx(ctx, id); err != nil {
			return fmt.Errorf("cluster: resync drop edited %d: %w", id, err)
		}
	}
	for _, id := range r.db.Binaries() {
		if !onLeader[id] {
			if err := r.db.DeleteCtx(ctx, id); err != nil {
				return fmt.Errorf("cluster: resync drop binary %d: %w", id, err)
			}
		}
	}
	// Copy binaries first (edited sequences reference them), each kind in
	// ascending id order for determinism. An object deleted on the leader
	// mid-copy reads as not-found; skipping it is correct — its delete
	// record is above the floor and replays from the tail.
	sort.Slice(metas, func(i, j int) bool {
		bi, bj := metas[i].Kind == "binary", metas[j].Kind == "binary"
		if bi != bj {
			return bi
		}
		return metas[i].ID < metas[j].ID
	})
	local := make(map[uint64]bool)
	for _, id := range r.db.Binaries() {
		local[id] = true
	}
	for _, m := range metas {
		if !r.current(e) {
			return nil
		}
		if m.Kind == "binary" {
			if local[m.ID] {
				continue
			}
			img, err := leader.Image(ctx, m.ID)
			if err != nil {
				if isQueryError(err) {
					continue // deleted on the leader mid-copy
				}
				return err
			}
			if _, err := r.db.InsertImageCtx(ctx, m.Name, img, mmdb.WithID(m.ID), mmdb.WithNoAugment()); err != nil {
				return fmt.Errorf("cluster: resync binary %d: %w", m.ID, err)
			}
			continue
		}
		meta, seq, err := leader.Object(ctx, m.ID)
		if err != nil {
			if isQueryError(err) {
				continue
			}
			return err
		}
		if seq == nil {
			return fmt.Errorf("cluster: resync edited %d: leader returned no sequence", m.ID)
		}
		if _, err := r.db.InsertEditedCtx(ctx, meta.Name, seq, mmdb.WithID(m.ID)); err != nil {
			return fmt.Errorf("cluster: resync edited %d: %w", m.ID, err)
		}
	}
	// A Follow or Promote superseding this resync mid-copy retires it here:
	// publishing its counters would let the retired leader's floor LSN
	// satisfy WaitApplied against the new epoch's log.
	if !r.advanceCursor(e, from) || !r.storeLeaderLSN(e, wst.DurableLSN) {
		return nil
	}
	r.resyncs.Add(1)
	mResyncs.Inc()
	r.notify()
	return nil
}
