package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	mmdb "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

// spansNamed collects every span in tr's tree whose name equals name.
func spansNamed(tr *obs.Trace, name string) []*obs.Span {
	var out []*obs.Span
	tr.Root().Walk(func(s *obs.Span) {
		if s.Name() == name {
			out = append(out, s)
		}
	})
	return out
}

// assertOneTraceID walks the whole tree and fails if any span carries a
// trace id other than the root's — the single-trace-id merge contract.
func assertOneTraceID(t *testing.T, tr *obs.Trace) {
	t.Helper()
	want := tr.TraceID()
	if want == (obs.TraceID{}) {
		t.Fatal("trace has a zero trace id")
	}
	tr.Root().Walk(func(s *obs.Span) {
		if s.Trace() != want {
			t.Errorf("span %q has trace id %s, want %s", s.Name(), s.Trace(), want)
		}
	})
}

// TestClusterTraceInProc: a traced scatter-gather query over the embedded
// transport yields one span tree: a shard:<id> child per shard, each with
// at least one attempt span that itself holds the shard engine's phases,
// all under a single trace id.
func TestClusterTraceInProc(t *testing.T) {
	c := makeCorpus(6, 2, 31)
	coord, _ := newInProcCluster(t, 3)
	c.seedCluster(t, coord)

	tr := obs.NewTrace()
	res, err := coord.Query(context.Background(), "at least 5% red", "bwm", tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("healthy cluster answered partially: missed %v", res.Missed)
	}
	assertOneTraceID(t, tr)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("shard:s%d", i)
		shardSpans := spansNamed(tr, name)
		if len(shardSpans) != 1 {
			t.Fatalf("want exactly one %s span, got %d", name, len(shardSpans))
		}
		attempts := 0
		for _, a := range shardSpans[0].Children() {
			if a.Name() != "attempt" {
				continue
			}
			attempts++
			if len(a.Children()) == 0 {
				t.Errorf("%s attempt span has no engine child spans", name)
			}
		}
		if attempts == 0 {
			t.Errorf("%s has no attempt spans", name)
		}
	}
	if got := tr.Get(obs.TClusterShardsQueried); got != 3 {
		t.Errorf("cluster_shards_queried = %d, want 3", got)
	}
}

// TestClusterTraceHTTP runs the same contract over the network transport
// with WAL-backed shards: the traceparent header propagates the trace id to
// each shard server, the shard's span tree (including its wal.commit-barrier
// span) comes back in the response, and the coordinator adopts it into one
// merged tree under one trace id.
func TestClusterTraceHTTP(t *testing.T) {
	c := makeCorpus(5, 2, 37)
	m := &ShardMap{}
	shards := make(map[string]Shard, 2)
	dir := t.TempDir()
	var servers []*httptest.Server
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("s%d", i)
		db, err := mmdb.Open(mmdb.WithPath(filepath.Join(dir, id+".db")))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		ts := httptest.NewServer(server.New(db))
		t.Cleanup(ts.Close)
		servers = append(servers, ts)
		m.Shards = append(m.Shards, ShardInfo{ID: id, Addr: ts.URL})
		shards[id] = NewHTTPShard(id, ts.URL, ts.Client())
	}
	coord, err := New(m, shards, Options{Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	c.seedCluster(t, coord)

	tr := obs.NewTrace()
	res, err := coord.Query(context.Background(), "at least 5% red", "bwm", tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("healthy cluster answered partially: missed %v", res.Missed)
	}
	assertOneTraceID(t, tr)
	if got := len(spansNamed(tr, "shard:s0")) + len(spansNamed(tr, "shard:s1")); got != 2 {
		t.Fatalf("want 2 shard spans, got %d", got)
	}
	// WAL-backed shards record the read-your-writes barrier on every traced
	// query; the adopted remote subtrees must carry it.
	if got := len(spansNamed(tr, "wal.commit-barrier")); got < 2 {
		t.Fatalf("want a wal.commit-barrier span from each shard, got %d", got)
	}

	// Partial answers keep the responding shards' spans: kill one server and
	// the other shard's subtree still lands in the merged tree, while the
	// dead shard's span records the failure.
	servers[0].Close()
	tr2 := obs.NewTrace()
	res, err = coord.Query(context.Background(), "at least 5% red", "bwm", tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("want partial answer with one shard down")
	}
	assertOneTraceID(t, tr2)
	live := spansNamed(tr2, "shard:s1")
	if len(live) != 1 || len(live[0].Children()) == 0 {
		t.Fatalf("responding shard's span subtree missing from partial answer: %v", live)
	}
	if got := len(spansNamed(tr2, "wal.commit-barrier")); got < 1 {
		t.Fatal("responding shard's wal.commit-barrier span missing from partial answer")
	}
	dead := spansNamed(tr2, "shard:s0")
	if len(dead) != 1 || dead[0].Attr("error") == "" {
		t.Fatal("failed shard's span should record its error")
	}
}

// TestNilSpanAllocs pins the tracing-off cost: the whole nil-span surface
// the cluster fan-out path touches per shard call must allocate nothing.
func TestNilSpanAllocs(t *testing.T) {
	var sp *obs.Span
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c := sp.StartChild("attempt")
		c.SetAttr("try", "1")
		c.Count(obs.TClusterRetries, 1)
		if obs.TraceForSpan(c) != nil {
			t.Fatal("nil span must yield a nil trace")
		}
		if obs.ContextWithSpan(ctx, c) != ctx {
			t.Fatal("nil span must not wrap the context")
		}
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-span fan-out path allocates %.1f times per call, want 0", allocs)
	}
}
