package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	mmdb "repro"
	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/editops"
	"repro/internal/obs"
)

// A ReplicaSet presents one shard's replicas — a single leader plus N
// followers — to the coordinator as an ordinary Shard, so scatter-gather,
// retries, hedging and health checking all apply unchanged. Inside the
// set:
//
//   - Writes go to the leader, then block until at least one follower has
//     applied the write's durable LSN (semi-synchronous ack). A write the
//     caller saw succeed therefore exists on ≥2 replicas, which is what
//     makes promote-on-failure lossless under a single failure.
//   - Reads prefer fresh followers — lag ≤ FreshnessBound, round-robin —
//     falling back to the leader and finally to stale followers, so one
//     replica dying mid-query degrades to a slower answer, not a partial
//     one.
//   - The monitor declares the leader down after consecutive probe
//     failures and promotes the most-caught-up follower; any-follower-ack
//     on writes plus max-applied-wins on promotion is exactly the pair
//     that preserves every acknowledged write.

// ErrNoAck reports a write that reached the leader but was not applied by
// any follower within AckTimeout. The write may surface after a retry (the
// redo stream is idempotent) but it is not yet promotion-safe, so the
// caller must treat it as failed.
var ErrNoAck = errors.New("cluster: write not acknowledged by any follower")

// ErrNoLeader reports a replica set whose leader is unknown or gone with
// no follower eligible for promotion.
var ErrNoLeader = errors.New("cluster: replica set has no leader")

// ReplicaConn is one replica as the set's manager sees it: the full shard
// surface, the log-tail surface (any replica may become the leader), and
// the replication control verbs.
type ReplicaConn interface {
	LeaderConn
	// ReplStatus snapshots the replica's replication state.
	ReplStatus(ctx context.Context) (ReplStatus, error)
	// WaitApplied blocks until the replica has applied lsn, wait elapses,
	// or ctx is done; the caller inspects AppliedLSN.
	WaitApplied(ctx context.Context, lsn uint64, wait time.Duration) (ReplStatus, error)
	// Promote makes the replica a leader (idempotent).
	Promote(ctx context.Context) error
	// Follow retargets the replica at a new leader, given both its
	// in-process connection and, for HTTP replicas, its address.
	Follow(ctx context.Context, leaderID, leaderAddr string, conn LeaderConn) error
}

// ReplicaMember names one replica of a set. Addr is the serving address
// for HTTP replicas (empty in process).
type ReplicaMember struct {
	ID   string
	Addr string
	Conn ReplicaConn
}

// rsMember is a member plus the set's cached view of it.
type rsMember struct {
	ReplicaMember
	sm       stateMachine
	lag      atomic.Uint64
	reached  atomic.Bool // a status probe has succeeded at least once
	lagGauge *obs.Gauge
	upGauge  *obs.Gauge
}

func (m *rsMember) noteStatus(st ReplStatus, err error) {
	if err != nil {
		m.sm.failure()
		m.upGauge.Set(m.sm.current().gaugeValue())
		return
	}
	m.sm.success()
	m.reached.Store(true)
	m.lag.Store(st.Lag)
	m.lagGauge.Set(float64(st.Lag))
	m.upGauge.Set(m.sm.current().gaugeValue())
}

// ReplicaSet implements Shard over a leader plus followers. Construct with
// NewReplicaSet; the first member is the initial leader.
type ReplicaSet struct {
	id string

	// FreshnessBound is the largest leader_lsn - follower_lsn at which a
	// follower still serves reads. Staler followers are skipped (the read
	// redirects to the leader).
	FreshnessBound uint64
	// AckTimeout bounds the semi-synchronous wait for a follower ack.
	AckTimeout time.Duration

	mu        sync.RWMutex
	leader    *rsMember   // guarded by mu
	followers []*rsMember // guarded by mu
	rr        atomic.Uint64
	// promoteMu serializes promotions; it is always acquired before mu
	// (PromoteNow), never inside it — lockguard's order graph pins that.
	promoteMu sync.Mutex
}

// DefaultFreshnessBound and DefaultAckTimeout are the ReplicaSet defaults.
const (
	DefaultFreshnessBound uint64 = 64
	DefaultAckTimeout            = 5 * time.Second
)

// NewReplicaSet groups members into a replica set with id; members[0] is
// the initial leader. Followers are assumed to already follow the leader
// (Bootstrap wires them when the caller has not).
func NewReplicaSet(id string, members ...ReplicaMember) (*ReplicaSet, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: replica set %q needs at least one member", id)
	}
	rs := &ReplicaSet{
		id:             id,
		FreshnessBound: DefaultFreshnessBound,
		AckTimeout:     DefaultAckTimeout,
	}
	rs.mu.Lock()
	for i, m := range members {
		mem := rs.newMember(m)
		if i == 0 {
			rs.leader = mem
		} else {
			rs.followers = append(rs.followers, mem)
		}
	}
	rs.mu.Unlock()
	return rs, nil
}

func (rs *ReplicaSet) newMember(m ReplicaMember) *rsMember {
	reg := obs.Default()
	return &rsMember{
		ReplicaMember: m,
		lagGauge:      reg.Gauge(fmt.Sprintf("esidb_cluster_replica_lag{set=%q,replica=%q}", rs.id, m.ID)),
		upGauge:       reg.Gauge(fmt.Sprintf("esidb_cluster_replica_up{set=%q,replica=%q}", rs.id, m.ID)),
	}
}

// Bootstrap points every follower at the current leader. In-process sets
// call this once after construction; HTTP sets usually rely on each
// `esidb serve -replica-of` process wiring itself instead.
func (rs *ReplicaSet) Bootstrap(ctx context.Context) error {
	leader, followers := rs.snapshot()
	if leader == nil {
		return ErrNoLeader
	}
	for _, f := range followers {
		if err := f.Conn.Follow(ctx, leader.ID, leader.Addr, leader.Conn); err != nil {
			return fmt.Errorf("cluster: follower %s: %w", f.ID, err)
		}
	}
	return nil
}

// ID implements Shard.
func (rs *ReplicaSet) ID() string { return rs.id }

func (rs *ReplicaSet) snapshot() (*rsMember, []*rsMember) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	fs := make([]*rsMember, len(rs.followers))
	copy(fs, rs.followers)
	return rs.leader, fs
}

// LeaderID reports the current leader's id ("" when leaderless).
func (rs *ReplicaSet) LeaderID() string {
	leader, _ := rs.snapshot()
	if leader == nil {
		return ""
	}
	return leader.ID
}

// Ping implements Shard: the set is serving if any replica answers.
func (rs *ReplicaSet) Ping(ctx context.Context) error {
	var lastErr error = ErrNoLeader
	for _, m := range rs.members() {
		if err := m.Conn.Ping(ctx); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

func (rs *ReplicaSet) members() []*rsMember {
	leader, followers := rs.snapshot()
	out := make([]*rsMember, 0, len(followers)+1)
	if leader != nil {
		out = append(out, leader)
	}
	return append(out, followers...)
}

// --- Writes: leader + semi-synchronous follower ack ---------------------

// InsertImage implements Shard.
func (rs *ReplicaSet) InsertImage(ctx context.Context, id uint64, name string, img *mmdb.Image) error {
	return rs.insert(ctx, func(leader ReplicaConn) error {
		return leader.InsertImage(ctx, id, name, img)
	}, func(leader ReplicaConn) (bool, error) {
		meta, seq, err := leader.Object(ctx, id)
		if err != nil {
			return false, err
		}
		if meta.Kind != "binary" || meta.Name != name || seq != nil {
			return false, nil
		}
		got, err := leader.Image(ctx, id)
		if err != nil {
			return false, err
		}
		return got.Equal(img), nil
	})
}

// InsertSequence implements Shard.
func (rs *ReplicaSet) InsertSequence(ctx context.Context, id uint64, name string, seq *mmdb.Sequence) error {
	return rs.insert(ctx, func(leader ReplicaConn) error {
		return leader.InsertSequence(ctx, id, name, seq)
	}, func(leader ReplicaConn) (bool, error) {
		meta, got, err := leader.Object(ctx, id)
		if err != nil {
			return false, err
		}
		if got == nil || meta.Name != name {
			return false, nil
		}
		return bytes.Equal(editops.EncodeBinary(got), editops.EncodeBinary(seq)), nil
	})
}

// insert is write plus retry absorption: when a previous attempt reached
// the leader but missed its follower ack, the retry's insert fails with a
// duplicate-id error. Absorption is deliberately narrow — the error must
// be a duplicate-id specifically, and same must confirm the stored object
// matches the one being inserted — so a retry finishes its ack, while an
// accidental collision (same id, different content) surfaces the
// duplicate-id error instead of silently dropping the caller's data.
func (rs *ReplicaSet) insert(ctx context.Context, op func(leader ReplicaConn) error,
	same func(leader ReplicaConn) (bool, error)) error {
	leader, followers := rs.snapshot()
	if leader == nil {
		return ErrNoLeader
	}
	if err := op(leader.Conn); err != nil {
		if !isDuplicateID(err) {
			return err
		}
		if ok, serr := same(leader.Conn); serr != nil || !ok {
			return err
		}
	}
	return rs.ackWrite(ctx, leader, followers)
}

// isDuplicateID reports an insert that failed because the id is already
// taken: catalog.ErrIDTaken in process, an HTTP 409 conflict over the
// wire.
func isDuplicateID(err error) bool {
	if errors.Is(err, catalog.ErrIDTaken) {
		return true
	}
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Code == api.CodeConflict
}

// Delete implements Shard (a write: it must replicate like one).
func (rs *ReplicaSet) Delete(ctx context.Context, id uint64) error {
	return rs.write(ctx, func(leader ReplicaConn) error {
		return leader.Delete(ctx, id)
	})
}

func (rs *ReplicaSet) write(ctx context.Context, op func(leader ReplicaConn) error) error {
	leader, followers := rs.snapshot()
	if leader == nil {
		return ErrNoLeader
	}
	if err := op(leader.Conn); err != nil {
		return err
	}
	return rs.ackWrite(ctx, leader, followers)
}

// ackWrite is the semi-synchronous barrier: sample the leader's durable
// horizon (≥ the write's LSN — the leader's insert waited for its own WAL
// durability) and block until some follower has applied it. With no
// followers the set is running single-copy and the leader's fsync is the
// only guarantee available.
func (rs *ReplicaSet) ackWrite(ctx context.Context, leader *rsMember, followers []*rsMember) error {
	if len(followers) == 0 {
		return nil
	}
	wst, err := leader.Conn.WALStatus(ctx)
	if err != nil {
		return fmt.Errorf("cluster: write durable on leader but ack horizon unknown: %w", err)
	}
	lsn := wst.DurableLSN
	ackCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type ackResult struct {
		m  *rsMember
		st ReplStatus
		ok bool
	}
	results := make(chan ackResult, len(followers))
	for _, f := range followers {
		f := f
		go func() {
			st, err := f.Conn.WaitApplied(ackCtx, lsn, rs.AckTimeout)
			if err != nil && ackCtx.Err() != nil {
				// The ack race was settled elsewhere (or the caller gave
				// up) and this wait was merely cancelled — that says
				// nothing about the follower's health.
				results <- ackResult{f, st, false}
				return
			}
			// Successes and failures both feed the health/lag view the
			// read path routes on, so an unreachable follower degrades at
			// write time, not a monitor tick later.
			f.noteStatus(st, err)
			// A member promoted mid-wait answers as a leader with its
			// *own* durable LSN — a different LSN space from lsn — so its
			// comparison is meaningless and must never count as an ack.
			results <- ackResult{f, st, err == nil && st.Role == RoleFollower && st.AppliedLSN >= lsn}
		}()
	}
	for range followers {
		select {
		case r := <-results:
			if r.ok {
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return ErrNoAck
}

// --- Reads ---------------------------------------------------------------

// fresh reports whether a follower is close enough to the leader to serve
// reads. A follower that has never been probed is trusted: the monitor (or
// the write path) corrects the view within one tick.
func (rs *ReplicaSet) fresh(m *rsMember) bool {
	if m.sm.current() == StateDown {
		return false
	}
	return !m.reached.Load() || m.lag.Load() <= rs.FreshnessBound
}

// readOrder is the follower-read policy: fresh followers first (rotated so
// load spreads), then the leader, then stale followers as a last resort —
// a stale answer beats a Partial one only after everything fresher failed.
func (rs *ReplicaSet) readOrder() []*rsMember {
	leader, followers := rs.snapshot()
	var freshF, stale []*rsMember
	for _, f := range followers {
		if rs.fresh(f) {
			freshF = append(freshF, f)
		} else {
			stale = append(stale, f)
		}
	}
	if n := len(freshF); n > 1 {
		off := int(rs.rr.Add(1)) % n
		freshF = append(freshF[off:], freshF[:off]...)
	}
	order := freshF
	if leader != nil {
		order = append(order, leader)
	}
	return append(order, stale...)
}

// leaderOrder is the metadata-read policy: leader first (it has every
// acknowledged write by definition), replicas only as failover.
func (rs *ReplicaSet) leaderOrder() []*rsMember {
	return rs.members()
}

// readFrom tries members in order until one answers. Query errors (bad
// request — every replica would refuse identically) return immediately;
// infra errors move on to the next replica. sp gains one child span per
// replica tried, tagged with the replica id and role.
func readFrom[T any](ctx context.Context, rs *ReplicaSet, order []*rsMember, sp *obs.Span,
	call func(ReplicaConn, *obs.Span) (T, error)) (T, error) {
	var zero T
	if len(order) == 0 {
		return zero, ErrNoLeader
	}
	leaderID := rs.LeaderID()
	var lastErr error
	for _, m := range order {
		csp := sp.StartChild("replica:" + m.ID)
		role := RoleFollower
		if m.ID == leaderID {
			role = RoleLeader
		}
		csp.SetAttr("role", role)
		v, err := call(m.Conn, csp)
		if err != nil {
			csp.SetAttr("error", err.Error())
			csp.End()
			if isQueryError(err) {
				return zero, err
			}
			m.noteStatus(ReplStatus{}, err)
			lastErr = err
			continue
		}
		csp.End()
		return v, nil
	}
	return zero, lastErr
}

// Query implements Shard.
func (rs *ReplicaSet) Query(ctx context.Context, text, mode string, sp *obs.Span) (*ShardAnswer, error) {
	return readFrom(ctx, rs, rs.readOrder(), sp, func(c ReplicaConn, csp *obs.Span) (*ShardAnswer, error) {
		return c.Query(ctx, text, mode, csp)
	})
}

// MultiRange implements Shard.
func (rs *ReplicaSet) MultiRange(ctx context.Context, bins []int, pctMin, pctMax float64, mode string, sp *obs.Span) (*ShardAnswer, error) {
	return readFrom(ctx, rs, rs.readOrder(), sp, func(c ReplicaConn, csp *obs.Span) (*ShardAnswer, error) {
		return c.MultiRange(ctx, bins, pctMin, pctMax, mode, csp)
	})
}

// Similar implements Shard.
func (rs *ReplicaSet) Similar(ctx context.Context, probe *mmdb.Image, k int, metric string, sp *obs.Span) ([]mmdb.Match, error) {
	return readFrom(ctx, rs, rs.readOrder(), sp, func(c ReplicaConn, csp *obs.Span) ([]mmdb.Match, error) {
		return c.Similar(ctx, probe, k, metric, csp)
	})
}

// Stats implements Shard.
func (rs *ReplicaSet) Stats(ctx context.Context) (*mmdb.Stats, error) {
	return readFrom(ctx, rs, rs.leaderOrder(), nil, func(c ReplicaConn, _ *obs.Span) (*mmdb.Stats, error) {
		return c.Stats(ctx)
	})
}

// HasObject implements Shard. Object-identity reads go leader-first: the
// id allocator seeds from them, so they must see every acknowledged write.
func (rs *ReplicaSet) HasObject(ctx context.Context, id uint64) (bool, error) {
	return readFrom(ctx, rs, rs.leaderOrder(), nil, func(c ReplicaConn, _ *obs.Span) (bool, error) {
		return c.HasObject(ctx, id)
	})
}

// Object implements Shard.
func (rs *ReplicaSet) Object(ctx context.Context, id uint64) (*ObjectMeta, *mmdb.Sequence, error) {
	type pair struct {
		m *ObjectMeta
		s *mmdb.Sequence
	}
	p, err := readFrom(ctx, rs, rs.leaderOrder(), nil, func(c ReplicaConn, _ *obs.Span) (pair, error) {
		m, s, err := c.Object(ctx, id)
		return pair{m, s}, err
	})
	return p.m, p.s, err
}

// Image implements Shard.
func (rs *ReplicaSet) Image(ctx context.Context, id uint64) (*mmdb.Image, error) {
	return readFrom(ctx, rs, rs.leaderOrder(), nil, func(c ReplicaConn, _ *obs.Span) (*mmdb.Image, error) {
		return c.Image(ctx, id)
	})
}

// List implements Shard.
func (rs *ReplicaSet) List(ctx context.Context) ([]ObjectMeta, error) {
	return readFrom(ctx, rs, rs.leaderOrder(), nil, func(c ReplicaConn, _ *obs.Span) ([]ObjectMeta, error) {
		return c.List(ctx)
	})
}

// --- Status, monitor and promotion --------------------------------------

// ReplicaInfo is one replica's state as the set reports it (CLI, tests).
type ReplicaInfo struct {
	ID     string     `json:"id"`
	Addr   string     `json:"addr,omitempty"`
	Role   string     `json:"role"`
	Up     bool       `json:"up"`
	Status ReplStatus `json:"status"`
}

// Probe polls every member's replication status once, refreshing the
// cached lag/health view the read path routes on, and returns the result.
func (rs *ReplicaSet) Probe(ctx context.Context) []ReplicaInfo {
	leaderID := rs.LeaderID()
	members := rs.members()
	out := make([]ReplicaInfo, 0, len(members))
	for _, m := range members {
		st, err := m.Conn.ReplStatus(ctx)
		m.noteStatus(st, err)
		role := RoleFollower
		if m.ID == leaderID {
			role = RoleLeader
		}
		out = append(out, ReplicaInfo{
			ID: m.ID, Addr: m.Addr, Role: role,
			Up:     err == nil,
			Status: st,
		})
	}
	return out
}

// StartMonitor runs the probe/promote loop until ctx is done: every
// interval it refreshes replica statuses, and once the leader has failed
// enough consecutive probes to be Down (the health state machine's
// window), it promotes. Promotion latency is therefore bounded by
// downAfter probe intervals plus one promotion round-trip.
func (rs *ReplicaSet) StartMonitor(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rs.tick(ctx)
			}
		}
	}()
}

func (rs *ReplicaSet) tick(ctx context.Context) {
	rs.Probe(ctx)
	leader, followers := rs.snapshot()
	if leader == nil || leader.sm.current() != StateDown || len(followers) == 0 {
		return
	}
	_, _ = rs.PromoteNow(ctx)
}

// PromoteNow fails over immediately: the most-caught-up reachable follower
// becomes leader, the remaining followers retarget at it, and the old
// leader leaves the set (a revived old leader must rejoin as a follower —
// it may hold unacknowledged writes the new leader never saw, and
// re-seeding is the only safe way back in). Returns the new leader's id.
func (rs *ReplicaSet) PromoteNow(ctx context.Context) (string, error) {
	rs.promoteMu.Lock()
	defer rs.promoteMu.Unlock()
	oldLeader, followers := rs.snapshot()
	var best *rsMember
	var bestSt ReplStatus
	for _, f := range followers {
		st, err := f.Conn.ReplStatus(ctx)
		f.noteStatus(st, err)
		if err != nil {
			continue
		}
		if best == nil || st.AppliedLSN > bestSt.AppliedLSN {
			best, bestSt = f, st
		}
	}
	if best == nil {
		return "", fmt.Errorf("cluster: set %s: %w", rs.id, ErrNoLeader)
	}
	if err := best.Conn.Promote(ctx); err != nil {
		return "", fmt.Errorf("cluster: promote %s: %w", best.ID, err)
	}
	mPromotions.Inc()
	remaining := make([]*rsMember, 0, len(followers))
	for _, f := range followers {
		if f == best {
			continue
		}
		remaining = append(remaining, f)
		// Best effort: an unreachable follower re-wires when it comes back
		// through the same Follow verb.
		_ = f.Conn.Follow(ctx, best.ID, best.Addr, best.Conn)
	}
	rs.mu.Lock()
	rs.leader = best
	rs.followers = remaining
	rs.mu.Unlock()
	_ = oldLeader // dropped from the set; see doc comment
	return best.ID, nil
}
