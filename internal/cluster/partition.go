package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
)

// DefaultVNodes is the virtual-node count per shard on the hash ring.
// Enough points that adding one shard to a small cluster moves close to
// its fair 1/n share of base-clusters, cheap enough that ShardFor stays a
// binary search over a few hundred points.
const DefaultVNodes = 64

// ShardInfo names one shard. Addr is the HTTP base URL for network
// transports and may be empty for in-process deployments.
type ShardInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
	// Replicas lists the shard's followers (the entry itself is the
	// initial leader). Replica ids must be unique cluster-wide; nested
	// replicas are not allowed.
	Replicas []ShardInfo `json:"replicas,omitempty"`
}

// ShardMap is the explicit cluster layout, serialized as JSON for the
// -shard-map flag and the `esidb cluster` commands.
type ShardMap struct {
	// VNodes overrides DefaultVNodes when > 0. All members of a cluster
	// must agree on it, which is why it lives in the map file.
	VNodes int         `json:"vnodes,omitempty"`
	Shards []ShardInfo `json:"shards"`
}

// Validate checks the map is usable: at least one shard, non-empty unique
// ids.
func (m *ShardMap) Validate() error {
	if m == nil || len(m.Shards) == 0 {
		return errors.New("cluster: shard map has no shards")
	}
	seen := make(map[string]bool, len(m.Shards))
	for _, s := range m.Shards {
		if s.ID == "" {
			return errors.New("cluster: shard with empty id")
		}
		if seen[s.ID] {
			return fmt.Errorf("cluster: duplicate shard id %q", s.ID)
		}
		seen[s.ID] = true
		for _, r := range s.Replicas {
			if r.ID == "" {
				return fmt.Errorf("cluster: shard %q has a replica with empty id", s.ID)
			}
			if seen[r.ID] {
				return fmt.Errorf("cluster: duplicate replica id %q", r.ID)
			}
			seen[r.ID] = true
			if len(r.Replicas) > 0 {
				return fmt.Errorf("cluster: replica %q of shard %q has nested replicas", r.ID, s.ID)
			}
		}
	}
	return nil
}

// Shard returns the info for an id, or false.
func (m *ShardMap) Shard(id string) (ShardInfo, bool) {
	for _, s := range m.Shards {
		if s.ID == id {
			return s, true
		}
	}
	return ShardInfo{}, false
}

// WithShard returns a copy of the map with one shard appended.
func (m *ShardMap) WithShard(info ShardInfo) *ShardMap {
	out := &ShardMap{VNodes: m.VNodes, Shards: make([]ShardInfo, 0, len(m.Shards)+1)}
	out.Shards = append(out.Shards, m.Shards...)
	out.Shards = append(out.Shards, info)
	return out
}

// LoadShardMap reads and validates a JSON shard-map file.
func LoadShardMap(path string) (*ShardMap, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m ShardMap
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("cluster: parse shard map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Save writes the map as indented JSON.
func (m *ShardMap) Save(path string) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Ring is a consistent-hash ring over a shard map. Objects are placed by
// their *routing key*: a binary image routes by its own id, an edited
// sequence by its base's id — so a BWM main-component cluster (base plus
// every edited derivative) always lands on one shard, and bound caching
// and cluster walks never cross the network.
type Ring struct {
	points []ringPoint // sorted by hash
	vnodes int
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds the ring for a validated shard map.
func NewRing(m *ShardMap) (*Ring, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	vnodes := m.VNodes
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, points: make([]ringPoint, 0, vnodes*len(m.Shards))}
	for _, s := range m.Shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashVNode(s.ID, v), shard: s.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) tie-break by shard id so
		// every coordinator agrees on the assignment.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// ShardFor maps a routing key (a base-image id) to its home shard: the
// first vnode clockwise from the key's hash.
func (r *Ring) ShardFor(baseID uint64) string {
	h := hashID(baseID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// RouteKey returns the id an object is placed by: edited sequences follow
// their base (base-affine partitioning), binaries route by themselves.
func RouteKey(id uint64, baseID uint64) uint64 {
	if baseID != 0 {
		return baseID
	}
	return id
}

func hashVNode(shardID string, replica int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(shardID))
	var buf [9]byte
	buf[0] = '#'
	binary.BigEndian.PutUint64(buf[1:], uint64(replica))
	h.Write(buf[:])
	return mix64(h.Sum64())
}

func hashID(id uint64) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], id)
	h := fnv.New64a()
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 finalizer. FNV over inputs this short leaves
// the high bits of the sum nearly constant, which would collapse the ring
// into one band (one shard owning every key); the avalanche pass spreads
// points and keys across the whole 64-bit circle.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Move is one base-cluster relocation in a rebalance plan: the base image
// and every edited derivative hop together from From to To.
type Move struct {
	Base     uint64
	From, To string
}

// PlanMoves diffs two rings over the given base ids and returns the
// base-clusters whose home changes, sorted by base id for deterministic,
// streamable execution. Bases whose assignment is unchanged do not move —
// the consistent ring is what keeps this list ~1/n of the data when one
// shard joins an n-shard cluster.
func PlanMoves(oldRing, newRing *Ring, bases []uint64) []Move {
	var moves []Move
	for _, b := range bases {
		from, to := oldRing.ShardFor(b), newRing.ShardFor(b)
		if from != to {
			moves = append(moves, Move{Base: b, From: from, To: to})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].Base < moves[j].Base })
	return moves
}
