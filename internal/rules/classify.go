package rules

import (
	"repro/internal/editops"
)

// Bound-widening classification (paper §4). A rule is bound-widening when
// the output percentage range [Min/Total, Max/Total] always contains the
// input percentage range, for every bin and every prior state. For such
// rules, if the starting range already intersects the query range, the
// final range must too — which is the observation BWM exploits to skip rule
// evaluation entirely.

// IsBoundWidening reports whether the rule associated with op is
// bound-widening:
//
//   - Define, Combine, Modify and Mutate: always (Combine/Modify/move-Mutate
//     keep Total fixed and only relax the count bounds; resize-Mutate scales
//     both sides so the percentage range can only grow; Define is inert).
//   - Merge with a null target: yes — cropping to the DR can only widen the
//     percentage range (proof in DESIGN.md §5).
//   - Merge with a target: no — pasting onto a target can raise the minimum
//     percentage (the target's own pixels contribute a floor).
func IsBoundWidening(op editops.Op) bool {
	m, ok := op.(editops.Merge)
	return !ok || m.Target == editops.NullTarget
}

// SequenceIsWidening reports whether every operation in the sequence has a
// bound-widening rule, ignoring geometry. Prefer SequenceIsWideningFor,
// which also rejects the degenerate cases where an operation collapses the
// image to zero pixels (an empty image's percentage range is [0, 0], which
// does not contain the base's range, so widening fails even for a null
// Merge).
func SequenceIsWidening(ops []editops.Op) bool {
	for _, op := range ops {
		if !IsBoundWidening(op) {
			return false
		}
	}
	return true
}

// SequenceIsWideningFor is the geometry-aware classification used by BWM
// insertion (paper Fig. 1 step 3): every operation must have a widening
// rule AND no operation may shrink the image to zero pixels. Geometry is
// fully determined by the base dimensions and the sequence, so this is
// decidable at insertion time without touching pixels. Sequences with a
// target Merge are rejected before geometry needs the target's dimensions,
// so no resolver is required.
func SequenceIsWideningFor(ops []editops.Op, baseW, baseH int) bool {
	g := editops.StartGeom(baseW, baseH)
	for _, op := range ops {
		if !IsBoundWidening(op) {
			return false
		}
		next, _, err := g.Step(op, nil)
		if err != nil {
			return false
		}
		if next.W*next.H == 0 && g.W*g.H > 0 {
			return false
		}
		g = next
	}
	return true
}

// RuleInfo is one row of the rule classification matrix — the behavioural
// reproduction of the paper's Table 1, printed by `benchfig -exp table1`.
type RuleInfo struct {
	Operation string
	Condition string
	MinEffect string
	MaxEffect string
	TotalEff  string
	Widening  bool
}

// Table1 returns the implemented rule matrix. The effects are the sound,
// re-derived forms (DESIGN.md §5); D denotes the effective DR pixel count,
// E the pre-operation total, T/T_HB the Merge target's total and bin count,
// OV the overwritten target pixels and GAP the background fill count.
func Table1() []RuleInfo {
	return []RuleInfo{
		{"Define", "all", "no change", "no change", "no change", true},
		{"Combine", "all", "decrease by D", "increase by D", "no change", true},
		{"Modify", "RGBnew maps to HB", "no change", "increase by D", "no change", true},
		{"Modify", "else RGBold maps to HB", "decrease by D", "no change", "no change", true},
		{"Modify", "else", "no change", "no change", "no change", true},
		{"Mutate", "pure scale, DR contains image", "multiply by min replication", "multiply by max replication", "W'·H' exactly", true},
		{"Mutate", "otherwise (move)", "decrease by D", "increase by D", "no change", true},
		{"Merge", "target is null", "max(0, HBmin−(E−D))", "min(HBmax, D)", "D", true},
		{"Merge", "target is not null", "max(0,HBmin−(E−D)) + max(0,T_HB−OV) + [bg∈HB]·GAP", "min(HBmax,D) + min(T_HB,T−OV) + [bg∈HB]·GAP", "W'·H' exactly", false},
	}
}
