// Package rules implements the paper's Rule-Based Method (RBM) machinery
// (§3.2, Table 1): for an image stored as a base reference plus an editing
// sequence, it computes conservative [min, max] bounds on the number of
// pixels mapping to a histogram bin — without instantiating the image.
//
// The invariant every rule preserves (and the property tests verify) is
// soundness: if the edited image were instantiated, its true count for the
// bin would lie inside the computed bounds, and its true pixel total equals
// the tracked total exactly. The table scraped from the paper is partially
// garbled, so each rule is re-derived conservatively; see DESIGN.md §5. The
// widening/non-widening classification (§4) matches the paper: Modify,
// Combine, Mutate and null-target Merge widen; target Merge does not.
package rules

import (
	"fmt"

	"repro/internal/colorspace"
	"repro/internal/editops"
	"repro/internal/histogram"
	"repro/internal/imaging"
)

// Bounds is the state the BOUNDS algorithm threads through a sequence for
// one histogram bin: pixel-count bounds for the bin and the exact total.
type Bounds struct {
	// Min and Max bracket the number of pixels mapping to the bin.
	Min, Max int
	// Total is the exact number of pixels in the (possibly resized) image.
	Total int
}

// PctRange returns the percentage interval [Min/Total, Max/Total]. An empty
// image yields [0, 0].
func (b Bounds) PctRange() (lo, hi float64) {
	if b.Total == 0 {
		return 0, 0
	}
	t := float64(b.Total)
	return float64(b.Min) / t, float64(b.Max) / t
}

// Contains reports whether an exact count/total observation is inside the
// bounds; the soundness property tests are phrased with it.
func (b Bounds) Contains(count, total int) bool {
	return total == b.Total && count >= b.Min && count <= b.Max
}

// Overlaps reports whether the percentage range intersects [pctMin, pctMax]
// (inclusive on both ends). RBM prunes an image exactly when this is false.
func (b Bounds) Overlaps(pctMin, pctMax float64) bool {
	lo, hi := b.PctRange()
	return lo <= pctMax && hi >= pctMin
}

func (b Bounds) clamp() Bounds {
	if b.Min < 0 {
		b.Min = 0
	}
	if b.Max > b.Total {
		b.Max = b.Total
	}
	if b.Min > b.Max {
		// Bounds can only cross through clamping when Total shrinks below
		// Min; the true count is then necessarily in [Max, Min] = [Total,
		// Total]... keeping the invariant simple: collapse onto the valid
		// interval.
		b.Min = b.Max
	}
	return b
}

// TargetInfo resolves the stored facts about a Merge target (a binary image
// in the database): its extracted histogram and raster dimensions. The
// rule engine never touches pixels; these are catalog lookups.
type TargetInfo interface {
	// HistogramOf returns the stored histogram of a binary image.
	HistogramOf(id uint64) (*histogram.Histogram, error)
	// DimsOf returns a binary image's raster dimensions.
	DimsOf(id uint64) (w, h int, err error)
}

// Engine evaluates rules for a fixed quantizer and editing environment. It
// must be configured with the same Background the instantiation Env uses,
// or Merge gap / Mutate vacancy reasoning would be unsound.
type Engine struct {
	Quant      colorspace.Quantizer
	Background imaging.RGB
	Info       TargetInfo
}

// NewEngine returns an engine over the given quantizer, background color
// and target resolver. Info may be nil if no sequence contains a non-null
// Merge.
func NewEngine(q colorspace.Quantizer, background imaging.RGB, info TargetInfo) *Engine {
	return &Engine{Quant: q, Background: background, Info: info}
}

func (e *Engine) targetDims() editops.TargetDims {
	if e.Info == nil {
		return nil
	}
	return e.Info.DimsOf
}

// BoundsForBin runs the paper's BOUNDS algorithm: starting from the base
// image's exact histogram value for bin, it applies the rule of every
// operation in order and returns the final bounds.
func (e *Engine) BoundsForBin(base *histogram.Histogram, baseW, baseH int, ops []editops.Op, bin int) (Bounds, error) {
	b := Bounds{Min: base.Counts[bin], Max: base.Counts[bin], Total: baseW * baseH}
	g := editops.StartGeom(baseW, baseH)
	dims := e.targetDims()
	for i, op := range ops {
		next, layout, err := g.Step(op, dims)
		if err != nil {
			return Bounds{}, fmt.Errorf("rules: op %d: %w", i, err)
		}
		b, err = e.applyRule(b, op, g, layout, bin)
		if err != nil {
			return Bounds{}, fmt.Errorf("rules: op %d (%s): %w", i, op.Kind(), err)
		}
		g = next
	}
	return b, nil
}

// applyRule adjusts bounds for one operation. g is the geometry before the
// operation; layout is the merge layout when op is a Merge.
func (e *Engine) applyRule(b Bounds, op editops.Op, g editops.Geom, layout editops.MergeLayout, bin int) (Bounds, error) {
	switch o := op.(type) {
	case editops.Define:
		return b, nil

	case editops.Combine:
		// Blur changes only DR pixels; each can enter or leave the bin.
		d := g.EffectiveDR().Area()
		b.Min -= d
		b.Max += d
		return b.clamp(), nil

	case editops.Modify:
		d := g.EffectiveDR().Area()
		newIn := e.Quant.Bin(o.New) == bin
		oldIn := e.Quant.Bin(o.Old) == bin
		switch {
		case newIn:
			// Up to every DR pixel may have had color Old and joined the
			// bin; none can leave (Old in the bin means recolored pixels
			// stay in it, since New is in the bin too).
			b.Max += d
		case oldIn:
			b.Min -= d
		}
		return b.clamp(), nil

	case editops.Mutate:
		if sx, sy, ok := o.ScaleFactors(); ok && g.DR.Canon().ContainsRect(g.Bounds()) {
			outW := editops.ScaleOutDim(g.W, sx)
			outH := editops.ScaleOutDim(g.H, sy)
			minRX, maxRX := editops.ScaleReplication(g.W, sx, outW)
			minRY, maxRY := editops.ScaleReplication(g.H, sy, outH)
			b = Bounds{
				Min:   b.Min * minRX * minRY,
				Max:   b.Max * maxRX * maxRY,
				Total: outW * outH,
			}
			return b.clamp(), nil
		}
		// Move: only DR pixels relocate; destinations overwrite, vacancies
		// fill with background. Net change per bin is bounded by ±|DR|.
		d := g.EffectiveDR().Area()
		b.Min -= d
		b.Max += d
		return b.clamp(), nil

	case editops.Merge:
		d := layout.BlockW * layout.BlockH
		var tCount, tTotal int
		if o.Target != editops.NullTarget {
			if e.Info == nil {
				return Bounds{}, fmt.Errorf("merge target %d needs a TargetInfo resolver", o.Target)
			}
			th, err := e.Info.HistogramOf(o.Target)
			if err != nil {
				return Bounds{}, err
			}
			tCount = th.Counts[bin]
			tTotal = th.Total
		}
		gapAdd := 0
		if e.Quant.Bin(e.Background) == bin {
			gapAdd = layout.Gap
		}
		// Block pixels in the bin: the DR holds all but (Total − D) of the
		// image's pixels, so at least Min − (Total − D) and at most
		// min(Max, D) of them map to the bin.
		blockMin := b.Min - (b.Total - d)
		if blockMin < 0 {
			blockMin = 0
		}
		blockMax := b.Max
		if blockMax > d {
			blockMax = d
		}
		// Surviving target pixels in the bin: the block overwrites
		// layout.Overwritten of them.
		targetMin := tCount - layout.Overwritten
		if targetMin < 0 {
			targetMin = 0
		}
		targetMax := tCount
		if rest := tTotal - layout.Overwritten; targetMax > rest {
			targetMax = rest
		}
		b = Bounds{
			Min:   blockMin + targetMin + gapAdd,
			Max:   blockMax + targetMax + gapAdd,
			Total: layout.NewW * layout.NewH,
		}
		return b.clamp(), nil

	default:
		return Bounds{}, fmt.Errorf("unknown op type %T", op)
	}
}

// BoundsAll runs the BOUNDS walk once for every histogram bin, returning a
// slice indexed by bin. It is the building block for bound-based k-NN
// pruning (the paper's future-work extension). The walk is shared across
// bins — geometry is stepped once per operation — so it is far cheaper than
// Bins() independent BoundsForBin calls; a property test pins the results
// to the per-bin walk.
func (e *Engine) BoundsAll(base *histogram.Histogram, baseW, baseH int, ops []editops.Op) ([]Bounds, error) {
	out := make([]Bounds, base.Bins())
	total := baseW * baseH
	for bin := range out {
		out[bin] = Bounds{Min: base.Counts[bin], Max: base.Counts[bin], Total: total}
	}
	g := editops.StartGeom(baseW, baseH)
	dims := e.targetDims()
	for i, op := range ops {
		next, layout, err := g.Step(op, dims)
		if err != nil {
			return nil, fmt.Errorf("rules: op %d: %w", i, err)
		}
		if err := e.applyRuleAll(out, op, g, layout); err != nil {
			return nil, fmt.Errorf("rules: op %d (%s): %w", i, op.Kind(), err)
		}
		g = next
	}
	return out, nil
}

// applyRuleAll mirrors applyRule across every bin in one pass.
func (e *Engine) applyRuleAll(bs []Bounds, op editops.Op, g editops.Geom, layout editops.MergeLayout) error {
	switch o := op.(type) {
	case editops.Define:
		return nil

	case editops.Combine:
		d := g.EffectiveDR().Area()
		for i := range bs {
			bs[i].Min -= d
			bs[i].Max += d
			bs[i] = bs[i].clamp()
		}
		return nil

	case editops.Modify:
		d := g.EffectiveDR().Area()
		newBin := e.Quant.Bin(o.New)
		oldBin := e.Quant.Bin(o.Old)
		// Per-bin rule: bins matching New get Max += D; bins matching Old
		// (and not New — the conditions are if/else) get Min −= D.
		bs[newBin].Max += d
		bs[newBin] = bs[newBin].clamp()
		if oldBin != newBin {
			bs[oldBin].Min -= d
			bs[oldBin] = bs[oldBin].clamp()
		}
		return nil

	case editops.Mutate:
		if sx, sy, ok := o.ScaleFactors(); ok && g.DR.Canon().ContainsRect(g.Bounds()) {
			outW := editops.ScaleOutDim(g.W, sx)
			outH := editops.ScaleOutDim(g.H, sy)
			minRX, maxRX := editops.ScaleReplication(g.W, sx, outW)
			minRY, maxRY := editops.ScaleReplication(g.H, sy, outH)
			total := outW * outH
			for i := range bs {
				bs[i] = Bounds{
					Min:   bs[i].Min * minRX * minRY,
					Max:   bs[i].Max * maxRX * maxRY,
					Total: total,
				}.clamp()
			}
			return nil
		}
		d := g.EffectiveDR().Area()
		for i := range bs {
			bs[i].Min -= d
			bs[i].Max += d
			bs[i] = bs[i].clamp()
		}
		return nil

	case editops.Merge:
		d := layout.BlockW * layout.BlockH
		var tHist *histogram.Histogram
		tTotal := 0
		if o.Target != editops.NullTarget {
			if e.Info == nil {
				return fmt.Errorf("merge target %d needs a TargetInfo resolver", o.Target)
			}
			var err error
			tHist, err = e.Info.HistogramOf(o.Target)
			if err != nil {
				return err
			}
			tTotal = tHist.Total
		}
		bgBin := e.Quant.Bin(e.Background)
		newTotal := layout.NewW * layout.NewH
		for i := range bs {
			tCount := 0
			if tHist != nil {
				tCount = tHist.Counts[i]
			}
			gapAdd := 0
			if i == bgBin {
				gapAdd = layout.Gap
			}
			blockMin := bs[i].Min - (bs[i].Total - d)
			if blockMin < 0 {
				blockMin = 0
			}
			blockMax := bs[i].Max
			if blockMax > d {
				blockMax = d
			}
			targetMin := tCount - layout.Overwritten
			if targetMin < 0 {
				targetMin = 0
			}
			targetMax := tCount
			if rest := tTotal - layout.Overwritten; targetMax > rest {
				targetMax = rest
			}
			bs[i] = Bounds{
				Min:   blockMin + targetMin + gapAdd,
				Max:   blockMax + targetMax + gapAdd,
				Total: newTotal,
			}.clamp()
		}
		return nil

	default:
		return fmt.Errorf("unknown op type %T", op)
	}
}
