package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/colorspace"
	"repro/internal/editops"
	"repro/internal/histogram"
	"repro/internal/imaging"
)

var q4 = colorspace.NewUniformRGB(4)

// memInfo is an in-memory TargetInfo over a map of rasters.
type memInfo struct {
	images map[uint64]*imaging.Image
	quant  colorspace.Quantizer
}

func (m *memInfo) HistogramOf(id uint64) (*histogram.Histogram, error) {
	img, ok := m.images[id]
	if !ok {
		return nil, fmt.Errorf("no image %d", id)
	}
	return histogram.Extract(img, m.quant), nil
}

func (m *memInfo) DimsOf(id uint64) (int, int, error) {
	img, ok := m.images[id]
	if !ok {
		return 0, 0, fmt.Errorf("no image %d", id)
	}
	return img.W, img.H, nil
}

func (m *memInfo) resolve(id uint64) (*imaging.Image, error) {
	img, ok := m.images[id]
	if !ok {
		return nil, fmt.Errorf("no image %d", id)
	}
	return img, nil
}

var testPalette = []imaging.RGB{
	{R: 200, G: 0, B: 0}, {R: 0, G: 200, B: 0}, {R: 0, G: 0, B: 200},
	{R: 255, G: 255, B: 255}, {R: 0, G: 0, B: 0}, {R: 120, G: 120, B: 120},
}

func randImage(rng *rand.Rand, w, h int) *imaging.Image {
	img := imaging.New(w, h)
	for i := range img.Pix {
		img.Pix[i] = testPalette[rng.Intn(len(testPalette))]
	}
	return img
}

// randOps generates a random op sequence over a w×h base. If wideningOnly,
// target merges are excluded. Targets come from info's image set.
func randOps(rng *rand.Rand, w, h, n int, wideningOnly bool, targetIDs []uint64) []editops.Op {
	ops := make([]editops.Op, 0, n)
	randRect := func() imaging.Rect {
		x0, y0 := rng.Intn(w+4)-2, rng.Intn(h+4)-2
		return imaging.R(x0, y0, x0+1+rng.Intn(w), y0+1+rng.Intn(h))
	}
	for len(ops) < n {
		switch rng.Intn(7) {
		case 0:
			ops = append(ops, editops.Define{Region: randRect()})
		case 1:
			ops = append(ops, editops.Combine{Weights: [9]float64{1, 2, 1, 2, 4, 2, 1, 2, 1}})
		case 2:
			ops = append(ops, editops.Modify{
				Old: testPalette[rng.Intn(len(testPalette))],
				New: testPalette[rng.Intn(len(testPalette))],
			})
		case 3: // translate (rigid mutate)
			ops = append(ops, editops.Mutate{M: [9]float64{1, 0, float64(rng.Intn(9) - 4), 0, 1, float64(rng.Intn(9) - 4), 0, 0, 1}})
		case 4: // scale (resize when DR covers image, else move)
			factors := []float64{0.5, 1, 1.5, 2}
			ops = append(ops, editops.Mutate{M: [9]float64{factors[rng.Intn(4)], 0, 0, 0, factors[rng.Intn(4)], 0, 0, 0, 1}})
		case 5:
			ops = append(ops, editops.Merge{Target: editops.NullTarget})
		case 6:
			if wideningOnly || len(targetIDs) == 0 {
				continue
			}
			ops = append(ops, editops.Merge{
				Target: targetIDs[rng.Intn(len(targetIDs))],
				XP:     rng.Intn(2*w) - w/2,
				YP:     rng.Intn(2*h) - h/2,
			})
		}
	}
	return ops
}

// TestBoundsSoundness is the central invariant of the whole reproduction:
// for random bases and random sequences, the instantiated image's true bin
// count lies inside the rule-computed bounds for every bin, and the tracked
// total matches exactly.
func TestBoundsSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	info := &memInfo{quant: q4, images: map[uint64]*imaging.Image{
		101: randImage(rng, 7, 5),
		102: randImage(rng, 3, 9),
		103: randImage(rng, 12, 4),
	}}
	engine := NewEngine(q4, imaging.RGB{R: 17, G: 17, B: 17}, info)
	env := &editops.Env{Background: engine.Background, ResolveImage: info.resolve}
	targets := []uint64{101, 102, 103}

	for trial := 0; trial < 400; trial++ {
		w, h := 2+rng.Intn(10), 2+rng.Intn(10)
		base := randImage(rng, w, h)
		baseHist := histogram.Extract(base, q4)
		ops := randOps(rng, w, h, 1+rng.Intn(8), false, targets)

		inst, err := editops.Apply(base, ops, env)
		if err != nil {
			t.Fatalf("trial %d: apply: %v", trial, err)
		}
		truth := histogram.Extract(inst, q4)
		for bin := 0; bin < q4.Bins(); bin++ {
			b, err := engine.BoundsForBin(baseHist, w, h, ops, bin)
			if err != nil {
				t.Fatalf("trial %d bin %d: %v", trial, bin, err)
			}
			if !b.Contains(truth.Counts[bin], truth.Total) {
				t.Fatalf("trial %d bin %d: truth %d/%d outside bounds [%d,%d]/%d\nops: %v",
					trial, bin, truth.Counts[bin], truth.Total, b.Min, b.Max, b.Total, ops)
			}
		}
	}
}

// TestWideningSequencesWidenPercentageRange checks the property BWM relies
// on: for sequences of widening-only operations, the final percentage range
// contains the base image's exact percentage point, AND contains the initial
// range — so intersection with any query range is preserved.
func TestWideningSequencesWidenPercentageRange(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	engine := NewEngine(q4, imaging.RGB{}, nil)

	for trial := 0; trial < 400; trial++ {
		w, h := 2+rng.Intn(10), 2+rng.Intn(10)
		base := randImage(rng, w, h)
		baseHist := histogram.Extract(base, q4)
		ops := randOps(rng, w, h, 1+rng.Intn(8), true, nil)
		if !SequenceIsWidening(ops) {
			t.Fatalf("trial %d: generator emitted non-widening op", trial)
		}
		// The widening guarantee only holds for the geometry-aware
		// classification; sequences that collapse the image are excluded,
		// exactly as BWM insertion excludes them.
		if !SequenceIsWideningFor(ops, w, h) {
			continue
		}
		for bin := 0; bin < q4.Bins(); bin++ {
			start := Bounds{Min: baseHist.Counts[bin], Max: baseHist.Counts[bin], Total: w * h}
			lo0, hi0 := start.PctRange()
			b, err := engine.BoundsForBin(baseHist, w, h, ops, bin)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			lo, hi := b.PctRange()
			const eps = 1e-12
			if lo > lo0+eps || hi < hi0-eps {
				t.Fatalf("trial %d bin %d: range [%v,%v] does not contain initial [%v,%v]\nops: %v",
					trial, bin, lo, hi, lo0, hi0, ops)
			}
		}
	}
}

// TestNonWideningMergeCanNarrow demonstrates why target-Merge is excluded
// from BWM's Main Component: pasting onto a target raises the minimum
// percentage above the base's.
func TestNonWideningMergeCanNarrow(t *testing.T) {
	blue := imaging.RGB{R: 0, G: 0, B: 200}
	red := imaging.RGB{R: 200, G: 0, B: 0}
	target := imaging.NewFilled(10, 10, blue)
	info := &memInfo{quant: q4, images: map[uint64]*imaging.Image{5: target}}
	engine := NewEngine(q4, imaging.RGB{}, info)

	base := imaging.NewFilled(2, 2, red) // 0% blue
	baseHist := histogram.Extract(base, q4)
	ops := []editops.Op{editops.Merge{Target: 5, XP: 0, YP: 0}}
	blueBin := q4.Bin(blue)
	b, err := engine.BoundsForBin(baseHist, 2, 2, ops, blueBin)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := b.PctRange()
	if lo <= 0 {
		t.Fatalf("target merge should raise the minimum blue percentage, got lo=%v", lo)
	}
}

func TestBoundsExactForPureModify(t *testing.T) {
	red := imaging.RGB{R: 200, G: 0, B: 0}
	green := imaging.RGB{R: 0, G: 200, B: 0}
	base := imaging.NewFilled(4, 4, red)
	baseHist := histogram.Extract(base, q4)
	engine := NewEngine(q4, imaging.RGB{}, nil)
	ops := []editops.Op{editops.Modify{Old: red, New: green}}

	greenBin := q4.Bin(green)
	b, err := engine.BoundsForBin(baseHist, 4, 4, ops, greenBin)
	if err != nil {
		t.Fatal(err)
	}
	// All 16 pixels may turn green; none were green.
	if b.Min != 0 || b.Max != 16 || b.Total != 16 {
		t.Fatalf("bounds %+v", b)
	}
	redBin := q4.Bin(red)
	b, err = engine.BoundsForBin(baseHist, 4, 4, ops, redBin)
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 0 || b.Max != 16 {
		t.Fatalf("red bounds %+v", b)
	}
}

func TestBoundsMergeNullExactTotal(t *testing.T) {
	base := randImage(rand.New(rand.NewSource(9)), 8, 8)
	baseHist := histogram.Extract(base, q4)
	engine := NewEngine(q4, imaging.RGB{}, nil)
	ops := editops.CropTo(imaging.R(1, 1, 5, 4))
	b, err := engine.BoundsForBin(baseHist, 8, 8, ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 12 {
		t.Fatalf("crop total = %d, want 12", b.Total)
	}
}

func TestBoundsResizeExactForIntegerScale(t *testing.T) {
	blue := imaging.RGB{R: 0, G: 0, B: 200}
	base := imaging.NewFilled(3, 3, blue)
	baseHist := histogram.Extract(base, q4)
	engine := NewEngine(q4, imaging.RGB{}, nil)
	ops := editops.ScaleImage(3, 3, 2, 2)
	bin := q4.Bin(blue)
	b, err := engine.BoundsForBin(baseHist, 3, 3, ops, bin)
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 36 || b.Max != 36 || b.Total != 36 {
		t.Fatalf("integer scale bounds %+v, want exact 36", b)
	}
}

func TestBoundsOverlaps(t *testing.T) {
	b := Bounds{Min: 10, Max: 30, Total: 100} // pct range [0.1, 0.3]
	cases := []struct {
		lo, hi float64
		want   bool
	}{
		{0.0, 0.05, false},
		{0.0, 0.1, true}, // touching is inclusive
		{0.15, 0.2, true},
		{0.3, 0.5, true},
		{0.31, 0.5, false},
		{0.0, 1.0, true},
	}
	for _, c := range cases {
		if got := b.Overlaps(c.lo, c.hi); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestPctRangeEmptyImage(t *testing.T) {
	lo, hi := (Bounds{}).PctRange()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty image pct range [%v,%v]", lo, hi)
	}
}

func TestBoundsAllMatchesPerBin(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	info := &memInfo{quant: q4, images: map[uint64]*imaging.Image{
		201: randImage(rng, 5, 7),
		202: randImage(rng, 9, 3),
	}}
	engine := NewEngine(q4, imaging.RGB{R: 17, G: 17, B: 17}, info)
	for trial := 0; trial < 100; trial++ {
		w, h := 2+rng.Intn(8), 2+rng.Intn(8)
		base := randImage(rng, w, h)
		baseHist := histogram.Extract(base, q4)
		ops := randOps(rng, w, h, 1+rng.Intn(7), false, []uint64{201, 202})
		all, err := engine.BoundsAll(baseHist, w, h, ops)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != q4.Bins() {
			t.Fatalf("BoundsAll returned %d bins", len(all))
		}
		for bin := 0; bin < q4.Bins(); bin++ {
			b, err := engine.BoundsForBin(baseHist, w, h, ops, bin)
			if err != nil {
				t.Fatal(err)
			}
			if all[bin] != b {
				t.Fatalf("trial %d bin %d: BoundsAll %+v != BoundsForBin %+v\nops: %v",
					trial, bin, all[bin], b, ops)
			}
		}
	}
}

func TestMergeWithoutResolverFails(t *testing.T) {
	engine := NewEngine(q4, imaging.RGB{}, nil)
	base := imaging.NewFilled(2, 2, imaging.RGB{})
	h := histogram.Extract(base, q4)
	if _, err := engine.BoundsForBin(h, 2, 2, []editops.Op{editops.Merge{Target: 9}}, 0); err == nil {
		t.Fatal("merge without resolver succeeded")
	}
}

func TestIsBoundWidening(t *testing.T) {
	cases := []struct {
		op   editops.Op
		want bool
	}{
		{editops.Define{}, true},
		{editops.Combine{}, true},
		{editops.Modify{}, true},
		{editops.Mutate{}, true},
		{editops.Merge{Target: editops.NullTarget}, true},
		{editops.Merge{Target: 3}, false},
	}
	for _, c := range cases {
		if got := IsBoundWidening(c.op); got != c.want {
			t.Errorf("IsBoundWidening(%v) = %v, want %v", c.op, got, c.want)
		}
	}
	if !SequenceIsWidening([]editops.Op{editops.Define{}, editops.Modify{}}) {
		t.Error("widening sequence misclassified")
	}
	if SequenceIsWidening([]editops.Op{editops.Define{}, editops.Merge{Target: 4}}) {
		t.Error("non-widening sequence misclassified")
	}
}

func TestSequenceIsWideningForGeometryEdgeCases(t *testing.T) {
	// A null merge over an empty effective DR collapses the image: not
	// widening even though every op kind is.
	emptyCrop := []editops.Op{
		editops.Define{Region: imaging.R(2, -1, 5, 0)}, // clips to empty on any canvas
		editops.Merge{Target: editops.NullTarget},
	}
	if SequenceIsWideningFor(emptyCrop, 8, 8) {
		t.Error("empty-DR null merge classified widening")
	}
	// A normal crop is widening.
	crop := editops.CropTo(imaging.R(1, 1, 4, 4))
	if !SequenceIsWideningFor(crop, 8, 8) {
		t.Error("plain crop classified non-widening")
	}
	// Target merges are rejected without needing a resolver.
	paste := []editops.Op{editops.Merge{Target: 3}}
	if SequenceIsWideningFor(paste, 8, 8) {
		t.Error("target merge classified widening")
	}
	// A resize that rounds a dimension to zero collapses the image.
	vanish := editops.ScaleImage(1, 8, 0.3, 1)
	if SequenceIsWideningFor(vanish, 1, 8) {
		t.Error("resize-to-empty classified widening")
	}
}

func TestTable1ClassificationMatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 9 {
		t.Fatalf("Table1 has %d rows", len(rows))
	}
	widening := 0
	for _, r := range rows {
		if r.Widening {
			widening++
		}
		if r.Operation == "Merge" && r.Condition == "target is not null" && r.Widening {
			t.Error("target merge must not be widening")
		}
	}
	if widening != 8 {
		t.Fatalf("%d widening rows, want 8 (all but target merge)", widening)
	}
}

// TestTable1RowsPinned pins each implemented rule's arithmetic on a known
// starting state — the executable version of reading Table 1 row by row.
func TestTable1RowsPinned(t *testing.T) {
	blue := imaging.RGB{R: 0, G: 0, B: 200}
	red := imaging.RGB{R: 200, G: 0, B: 0}
	gray := imaging.RGB{R: 120, G: 120, B: 120}
	// Base: 10x10, 30 pixels blue, 70 gray.
	base := imaging.NewFilled(10, 10, gray)
	imaging.FillRect(base, imaging.R(0, 0, 10, 3), blue)
	h := histogram.Extract(base, q4)
	blueBin := q4.Bin(blue)
	engine := NewEngine(q4, imaging.RGB{}, nil)
	dr := editops.Define{Region: imaging.R(0, 0, 5, 4)} // D = 20

	bounds := func(ops ...editops.Op) Bounds {
		b, err := engine.BoundsForBin(h, 10, 10, ops, blueBin)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Combine: min −D, max +D, total unchanged.
	if b := bounds(dr, editops.Combine{Weights: [9]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}}); b != (Bounds{Min: 10, Max: 50, Total: 100}) {
		t.Fatalf("combine row: %+v", b)
	}
	// Modify, RGBnew in HB: max +D only.
	if b := bounds(dr, editops.Modify{Old: gray, New: blue}); b != (Bounds{Min: 30, Max: 50, Total: 100}) {
		t.Fatalf("modify-new row: %+v", b)
	}
	// Modify, RGBold in HB (new not): min −D only.
	if b := bounds(dr, editops.Modify{Old: blue, New: red}); b != (Bounds{Min: 10, Max: 30, Total: 100}) {
		t.Fatalf("modify-old row: %+v", b)
	}
	// Modify, neither: no change.
	if b := bounds(dr, editops.Modify{Old: gray, New: red}); b != (Bounds{Min: 30, Max: 30, Total: 100}) {
		t.Fatalf("modify-else row: %+v", b)
	}
	// Mutate scale 2x2 with DR ⊇ image: exact multiply by 4.
	full := editops.Define{Region: imaging.R(0, 0, 10, 10)}
	if b := bounds(full, editops.Mutate{M: [9]float64{2, 0, 0, 0, 2, 0, 0, 0, 1}}); b != (Bounds{Min: 120, Max: 120, Total: 400}) {
		t.Fatalf("mutate-scale row: %+v", b)
	}
	// Mutate rigid (translate): min −D, max +D.
	if b := bounds(dr, editops.Mutate{M: [9]float64{1, 0, 2, 0, 1, 2, 0, 0, 1}}); b != (Bounds{Min: 10, Max: 50, Total: 100}) {
		t.Fatalf("mutate-rigid row: %+v", b)
	}
	// Merge null: total = D, min = max(0, HBmin−(E−D)), max = min(HBmax, D).
	if b := bounds(dr, editops.Merge{Target: editops.NullTarget}); b != (Bounds{Min: 0, Max: 20, Total: 20}) {
		t.Fatalf("merge-null row: %+v", b)
	}
	// Merge null where the DR must contain blue: crop to the top 3 rows
	// (all 30 blue pixels, D=30): min = 30−(100−30) = max(0,−40)=0... use a
	// larger DR: top 8 rows (D=80): min = 30−(100−80) = 10, max = min(30,80).
	big := editops.Define{Region: imaging.R(0, 0, 10, 8)}
	if b := bounds(big, editops.Merge{Target: editops.NullTarget}); b != (Bounds{Min: 10, Max: 30, Total: 80}) {
		t.Fatalf("merge-null-big row: %+v", b)
	}
}

// TestMergeTargetRowPinned pins the non-widening Merge row with an explicit
// target: block D=20 pasted at (2,2) on a 6x6 target that is 50% blue.
func TestMergeTargetRowPinned(t *testing.T) {
	blue := imaging.RGB{R: 0, G: 0, B: 200}
	gray := imaging.RGB{R: 120, G: 120, B: 120}
	target := imaging.NewFilled(6, 6, gray)
	imaging.FillRect(target, imaging.R(0, 0, 6, 3), blue) // 18 blue of 36
	info := &memInfo{quant: q4, images: map[uint64]*imaging.Image{9: target}}
	engine := NewEngine(q4, imaging.RGB{}, info)

	base := imaging.NewFilled(10, 10, gray)
	imaging.FillRect(base, imaging.R(0, 0, 10, 3), blue) // 30 blue of 100
	h := histogram.Extract(base, q4)
	blueBin := q4.Bin(blue)

	ops := []editops.Op{
		editops.Define{Region: imaging.R(0, 0, 5, 4)}, // D = 20
		editops.Merge{Target: 9, XP: 2, YP: 2},
	}
	b, err := engine.BoundsForBin(h, 10, 10, ops, blueBin)
	if err != nil {
		t.Fatal(err)
	}
	// Canvas: union([0,6)x[0,6), [2,7)x[2,6)) = [0,7)x[0,6) → 42 pixels.
	// OV = [2,6)x[2,6) = 16; GAP = 42 − 36 − 20 + 16 = 2 (bg not blue).
	// blockMin = max(0, 30−(100−20)) = 0; blockMax = min(30,20) = 20.
	// targetMin = max(0, 18−16) = 2; targetMax = min(18, 36−16) = 18.
	want := Bounds{Min: 2, Max: 38, Total: 42}
	if b != want {
		t.Fatalf("merge-target row: %+v, want %+v", b, want)
	}
}
