package rules

import (
	"fmt"
	"testing"

	"repro/internal/colorspace"
	"repro/internal/editops"
	"repro/internal/histogram"
	"repro/internal/imaging"
)

// Fuzzing the Table-1 rule evaluator. The target decodes an arbitrary byte
// string into a structurally valid operation sequence (constrained
// parameters, so failures are genuine rule bugs rather than int overflow on
// absurd geometry) and asserts the BOUNDS invariants that make RBM sound:
// for every bin, 0 ≤ BOUNDmin ≤ BOUNDmax ≤ total pixels, and the all-bins
// walk agrees with the per-bin walk.

// fuzzTargetInfo serves two fixed merge targets (ids 1 and 2).
type fuzzTargetInfo struct {
	hists map[uint64]*histogram.Histogram
	dims  map[uint64][2]int
}

func (f *fuzzTargetInfo) HistogramOf(id uint64) (*histogram.Histogram, error) {
	h, ok := f.hists[id]
	if !ok {
		return nil, fmt.Errorf("fuzz: unknown target %d", id)
	}
	return h, nil
}

func (f *fuzzTargetInfo) DimsOf(id uint64) (w, h int, err error) {
	d, ok := f.dims[id]
	if !ok {
		return 0, 0, fmt.Errorf("fuzz: unknown target %d", id)
	}
	return d[0], d[1], nil
}

// opsFromBytes decodes data into a bounded operation sequence. Every
// parameter is clamped to a small range so the sequence always passes
// editops validation and geometry stays near the raster.
func opsFromBytes(data []byte) []editops.Op {
	const maxOps = 64
	var ops []editops.Op
	i := 0
	next := func() int {
		if i >= len(data) {
			return -1
		}
		b := int(data[i])
		i++
		return b
	}
	for len(ops) < maxOps {
		b := next()
		if b < 0 {
			break
		}
		switch b % 5 {
		case 0:
			x0, y0 := next(), next()
			dw, dh := next(), next()
			if dh < 0 {
				dh = 0
			}
			// Coordinates in [-4, 27], spans in [0, 31]: regions that fall
			// inside, straddle and miss a ≤16-pixel-wide raster.
			r := imaging.Rect{X0: x0%32 - 4, Y0: y0%32 - 4}
			r.X1 = r.X0 + (dw&31+32)%32
			r.Y1 = r.Y0 + dh%32
			ops = append(ops, editops.Define{Region: r})
		case 1:
			var w [9]float64
			sum := 0.0
			for j := range w {
				w[j] = float64(next()&15) / 4
				sum += w[j]
			}
			if sum <= 0 {
				w[4] = 1
			}
			ops = append(ops, editops.Combine{Weights: w})
		case 2:
			ops = append(ops, editops.Modify{
				Old: imaging.RGB{R: uint8(next() & 0xff), G: uint8(next() & 0xff), B: uint8(next() & 0xff)},
				New: imaging.RGB{R: uint8(next() & 0xff), G: uint8(next() & 0xff), B: uint8(next() & 0xff)},
			})
		case 3:
			// Affine maps with scales in (0, 2] and translations in [-8, 7]
			// keep result canvases small while still shrinking, growing,
			// shearing and translating.
			sx := float64(next()&7+1) / 4
			sy := float64(next()&7+1) / 4
			k1 := float64(next()&3) / 4
			k2 := float64(next()&3) / 4
			tx := float64(next()&15 - 8)
			ty := float64(next()&15 - 8)
			ops = append(ops, editops.Mutate{M: [9]float64{sx, k1, tx, k2, sy, ty, 0, 0, 1}})
		default:
			// Targets 0 (null), 1 and 2 (known), 3 (unknown → engine error,
			// which the fuzz body tolerates as a rejected input).
			t := uint64(next() & 3)
			ops = append(ops, editops.Merge{Target: t, XP: next()%16 - 4, YP: next()%16 - 4})
		}
	}
	return ops
}

func FuzzBoundsRules(f *testing.F) {
	quant := colorspace.NewUniformRGB(2)
	background := imaging.RGB{}
	t1 := imaging.NewFilled(6, 4, imaging.RGB{R: 200, G: 30, B: 30})
	t2 := imaging.NewFilled(3, 7, imaging.RGB{R: 20, G: 20, B: 220})
	info := &fuzzTargetInfo{
		hists: map[uint64]*histogram.Histogram{
			1: histogram.Extract(t1, quant),
			2: histogram.Extract(t2, quant),
		},
		dims: map[uint64][2]int{1: {6, 4}, 2: {3, 7}},
	}
	engine := NewEngine(quant, background, info)

	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{4, 1, 10, 10})                           // merge a known target
	f.Add([]byte{3, 7, 7, 0, 0, 8, 8})                    // big mutate
	f.Add([]byte{0, 200, 200, 1, 1, 1, 9, 9, 9, 9, 9, 9}) // off-image DR then combine
	f.Add([]byte{2, 255, 255, 255, 0, 0, 0, 2, 0, 0, 0, 1, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		ops := opsFromBytes(data)
		for _, op := range ops {
			if err := op.Validate(); err != nil {
				t.Fatalf("generator produced invalid op %v: %v", op, err)
			}
		}
		// Base raster derived from the head of the input, ≤16×16.
		w, h := 1, 1
		var c imaging.RGB
		if len(data) > 0 {
			w = int(data[0])%16 + 1
		}
		if len(data) > 1 {
			h = int(data[1])%16 + 1
		}
		if len(data) > 2 {
			c = imaging.RGB{R: data[2], G: data[2] / 2, B: 255 - data[2]}
		}
		base := histogram.Extract(imaging.NewFilled(w, h, c), quant)

		all, err := engine.BoundsAll(base, w, h, ops)
		if err != nil {
			return // e.g. merge of the deliberately unknown target 3
		}
		for bin, b := range all {
			if b.Min < 0 || b.Min > b.Max || b.Max > b.Total || b.Total < 0 {
				t.Fatalf("bin %d bounds violated: %+v (ops %v)", bin, b, ops)
			}
			single, err := engine.BoundsForBin(base, w, h, ops, bin)
			if err != nil {
				t.Fatalf("BoundsAll succeeded but BoundsForBin(%d) failed: %v", bin, err)
			}
			if single != b {
				t.Fatalf("bin %d: BoundsAll %+v != BoundsForBin %+v", bin, b, single)
			}
		}
	})
}
