package signature

import (
	"testing"

	"repro/internal/colorspace"
	"repro/internal/dataset"
	"repro/internal/editops"
	"repro/internal/imaging"
)

var q4 = colorspace.NewUniformRGB(4)

func TestExtractBICUniformImageIsAllInterior(t *testing.T) {
	img := imaging.NewFilled(6, 6, dataset.Red)
	sig := ExtractBIC(img, q4)
	if err := sig.Validate(); err != nil {
		t.Fatal(err)
	}
	if sig.Border.Total != 0 || sig.Interior.Total != 36 {
		t.Fatalf("border %d, interior %d", sig.Border.Total, sig.Interior.Total)
	}
}

func TestExtractBICCountsPartitionPixels(t *testing.T) {
	for i, f := range dataset.Flags(6, 24, 16, 3) {
		sig := ExtractBIC(f.Img, q4)
		if err := sig.Validate(); err != nil {
			t.Fatalf("flag %d: %v", i, err)
		}
		if sig.Border.Total+sig.Interior.Total != f.Img.Size() {
			t.Fatalf("flag %d: %d + %d != %d", i, sig.Border.Total, sig.Interior.Total, f.Img.Size())
		}
		// Multi-color flags must have some border pixels.
		if len(f.Img.Palette()) > 1 && sig.Border.Total == 0 {
			t.Fatalf("flag %d has no border pixels", i)
		}
	}
}

func TestExtractBICTwoHalves(t *testing.T) {
	// 6x6 split into two 3-wide vertical halves: border = the two columns
	// along the seam.
	img := imaging.New(6, 6)
	imaging.VStripes(img, 2, []imaging.RGB{dataset.Red, dataset.Blue})
	sig := ExtractBIC(img, q4)
	if sig.Border.Total != 12 {
		t.Fatalf("border %d, want 12", sig.Border.Total)
	}
	redBin := q4.Bin(dataset.Red)
	blueBin := q4.Bin(dataset.Blue)
	if sig.Border.Counts[redBin] != 6 || sig.Border.Counts[blueBin] != 6 {
		t.Fatalf("border split %d/%d", sig.Border.Counts[redBin], sig.Border.Counts[blueBin])
	}
}

func TestExtractBICSinglePixel(t *testing.T) {
	img := imaging.NewFilled(1, 1, dataset.Red)
	sig := ExtractBIC(img, q4)
	if sig.Interior.Total != 1 || sig.Border.Total != 0 {
		t.Fatalf("1x1: border %d interior %d", sig.Border.Total, sig.Interior.Total)
	}
}

func TestDLogProperties(t *testing.T) {
	flags := dataset.Flags(8, 24, 16, 5)
	sigs := make([]*BIC, len(flags))
	for i, f := range flags {
		sigs[i] = ExtractBIC(f.Img, q4)
	}
	for i, a := range sigs {
		if d := DLog(a, a); d != 0 {
			t.Fatalf("self dLog %v", d)
		}
		for j, b := range sigs {
			dab, dba := DLog(a, b), DLog(b, a)
			if dab != dba {
				t.Fatalf("dLog asymmetric between %d and %d", i, j)
			}
			if dab < 0 {
				t.Fatalf("negative dLog")
			}
		}
	}
	// L1 shares the properties.
	if d := L1(sigs[0], sigs[0]); d != 0 {
		t.Fatalf("self L1 %v", d)
	}
	if L1(sigs[0], sigs[1]) != L1(sigs[1], sigs[0]) {
		t.Fatal("L1 asymmetric")
	}
}

func TestDLogDistinguishesBorderFromInterior(t *testing.T) {
	// Same global histogram, different structure: a solid half vs. thin
	// stripes have identical color proportions but very different
	// border/interior splits — the case BIC was designed for.
	solid := imaging.New(16, 16)
	imaging.VStripes(solid, 2, []imaging.RGB{dataset.Red, dataset.Blue})
	striped := imaging.New(16, 16)
	imaging.VStripes(striped, 8, []imaging.RGB{dataset.Red, dataset.Blue})

	a := ExtractBIC(solid, q4)
	b := ExtractBIC(striped, q4)
	if DLog(a, b) == 0 {
		t.Fatal("dLog cannot distinguish structures a plain histogram cannot")
	}
	// Global histograms are identical (8 columns each color both ways).
	if a.Border.Total+a.Interior.Total != b.Border.Total+b.Interior.Total {
		t.Fatal("test setup wrong")
	}
}

func TestBICMismatchPanics(t *testing.T) {
	a := ExtractBIC(imaging.NewFilled(2, 2, dataset.Red), q4)
	b := ExtractBIC(imaging.NewFilled(2, 2, dataset.Red), colorspace.NewUniformRGB(2))
	defer func() {
		if recover() == nil {
			t.Fatal("bin mismatch did not panic")
		}
	}()
	DLog(a, b)
}

func TestIndexSearch(t *testing.T) {
	idx := NewIndex(q4)
	flags := dataset.Flags(10, 24, 16, 7)
	for i, f := range flags {
		idx.Add(uint64(i+1), f.Img)
	}
	if idx.Len() != 10 {
		t.Fatalf("Len %d", idx.Len())
	}
	// Probing with an indexed image finds itself at distance 0.
	got := idx.SearchImage(flags[3].Img, 3)
	if len(got) != 3 {
		t.Fatalf("%d results", len(got))
	}
	if got[0].Dist != 0 {
		t.Fatalf("self-probe distance %v", got[0].Dist)
	}
	found := false
	for _, m := range got {
		if m.ID == 4 && m.Dist == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("self not in results: %v", got)
	}
	// Ordering is ascending.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestIndexSurvivesBlurredProbe(t *testing.T) {
	// BIC's robustness scenario: a blurred probe still retrieves its
	// original among the top results.
	idx := NewIndex(q4)
	helmets := dataset.Helmets(12, 32, 24, 3)
	for i, h := range helmets {
		idx.Add(uint64(i+1), h.Img)
	}
	probe, err := editops.Apply(helmets[5].Img, editops.GaussianBlur(helmets[5].Img.Bounds()), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.SearchImage(probe, 3)
	for _, m := range got {
		if m.ID == 6 {
			return
		}
	}
	t.Fatalf("blurred probe lost its original: %v", got)
}
