// Package signature implements the Border/Interior pixel Classification
// (BIC) signature of Stehling, Nascimento & Falcão (CIKM 2002) — reference
// [21] of the paper, and the kind of "color representation without
// histograms" its future-work section asks about. A BIC signature is a pair
// of histograms: one over pixels whose 4-neighborhood is uniform
// (interior), one over the rest (border). The companion dLog distance
// compares bins on a logarithmic scale, which keeps large uniform regions
// from drowning out small salient ones.
//
// BIC signatures apply to materialized rasters only: the edit-sequence rule
// engine reasons about plain histograms, so edited images must be
// instantiated before BIC extraction. The Index type in this package is the
// in-memory search structure the database exposes for binary images.
package signature

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/colorspace"
	"repro/internal/histogram"
	"repro/internal/imaging"
)

// BIC is a border/interior classification signature.
type BIC struct {
	// Border counts pixels with at least one differently-quantized
	// 4-neighbor.
	Border *histogram.Histogram
	// Interior counts pixels whose in-bounds 4-neighbors all share the
	// pixel's quantized color.
	Interior *histogram.Histogram
}

// ExtractBIC classifies every pixel of img as border or interior under q
// and returns the two histograms. Edge-of-image pixels consider only their
// in-bounds neighbors (a 1×1 image is all interior).
func ExtractBIC(img *imaging.Image, q colorspace.Quantizer) *BIC {
	bins := q.Bins()
	sig := &BIC{Border: histogram.New(bins), Interior: histogram.New(bins)}
	// Precompute the quantized plane once; the classification then needs
	// only integer comparisons.
	plane := make([]int, len(img.Pix))
	for i, p := range img.Pix {
		plane[i] = q.Bin(p)
	}
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			c := plane[y*img.W+x]
			border := false
			if x > 0 && plane[y*img.W+x-1] != c {
				border = true
			} else if x+1 < img.W && plane[y*img.W+x+1] != c {
				border = true
			} else if y > 0 && plane[(y-1)*img.W+x] != c {
				border = true
			} else if y+1 < img.H && plane[(y+1)*img.W+x] != c {
				border = true
			}
			if border {
				sig.Border.Counts[c]++
				sig.Border.Total++
			} else {
				sig.Interior.Counts[c]++
				sig.Interior.Total++
			}
		}
	}
	return sig
}

// Bins returns the per-component bin count.
func (s *BIC) Bins() int { return s.Border.Bins() }

// Validate checks internal consistency.
func (s *BIC) Validate() error {
	if s.Border.Bins() != s.Interior.Bins() {
		return fmt.Errorf("signature: border has %d bins, interior %d", s.Border.Bins(), s.Interior.Bins())
	}
	if err := s.Border.Validate(); err != nil {
		return fmt.Errorf("signature: border: %w", err)
	}
	if err := s.Interior.Validate(); err != nil {
		return fmt.Errorf("signature: interior: %w", err)
	}
	return nil
}

// dLogBucket quantizes a fraction onto the BIC paper's logarithmic scale:
// 0 for 0, else 1 + ⌊log2(pct · 255)⌋ clamped to [1, 9].
func dLogBucket(pct float64) float64 {
	if pct <= 0 {
		return 0
	}
	v := pct * 255
	if v < 1 {
		return 1
	}
	b := 1 + math.Floor(math.Log2(v))
	if b > 9 {
		b = 9
	}
	return b
}

// normalized scales both component histograms by the image's TOTAL pixel
// count, so the concatenated vector sums to 1 and the border/interior ratio
// is preserved. Normalizing each component independently would make a
// thin-striped image indistinguishable from a solid bicolor one — exactly
// the structure BIC exists to capture.
func (s *BIC) normalized() (border, interior []float64) {
	total := float64(s.Border.Total + s.Interior.Total)
	border = make([]float64, s.Border.Bins())
	interior = make([]float64, s.Interior.Bins())
	if total == 0 {
		return border, interior
	}
	for i := range border {
		border[i] = float64(s.Border.Counts[i]) / total
		interior[i] = float64(s.Interior.Counts[i]) / total
	}
	return border, interior
}

// DLog is the BIC companion distance: the L1 distance between the two
// signatures' log-quantized normalized histograms, border and interior
// compared separately and summed. Not normalized to [0,1]; use it
// comparatively.
func DLog(a, b *BIC) float64 {
	if a.Bins() != b.Bins() {
		panic(fmt.Sprintf("signature: comparing %d-bin with %d-bin BIC", a.Bins(), b.Bins()))
	}
	ab, ai := a.normalized()
	bb, bi := b.normalized()
	sum := 0.0
	for i := range ab {
		sum += math.Abs(dLogBucket(ab[i]) - dLogBucket(bb[i]))
		sum += math.Abs(dLogBucket(ai[i]) - dLogBucket(bi[i]))
	}
	return sum
}

// L1 is the plain city-block distance over the concatenated normalized
// border+interior vectors, for callers who want a metric comparable to the
// global-histogram L1.
func L1(a, b *BIC) float64 {
	if a.Bins() != b.Bins() {
		panic(fmt.Sprintf("signature: comparing %d-bin with %d-bin BIC", a.Bins(), b.Bins()))
	}
	ab, ai := a.normalized()
	bb, bi := b.normalized()
	sum := 0.0
	for i := range ab {
		sum += math.Abs(ab[i]-bb[i]) + math.Abs(ai[i]-bi[i])
	}
	return sum
}

// Match is one Index search result.
type Match struct {
	ID   uint64
	Dist float64
}

// Index is an in-memory BIC search structure over identified rasters.
type Index struct {
	quant colorspace.Quantizer
	ids   []uint64
	sigs  []*BIC
}

// NewIndex returns an empty index under q.
func NewIndex(q colorspace.Quantizer) *Index {
	return &Index{quant: q}
}

// Add extracts and stores the signature of one raster.
func (x *Index) Add(id uint64, img *imaging.Image) {
	x.ids = append(x.ids, id)
	x.sigs = append(x.sigs, ExtractBIC(img, x.quant))
}

// Len returns the number of indexed images.
func (x *Index) Len() int { return len(x.ids) }

// Search returns the k nearest signatures to the probe under dLog.
func (x *Index) Search(probe *BIC, k int) []Match {
	out := make([]Match, 0, len(x.ids))
	for i, sig := range x.sigs {
		out = append(out, Match{ID: x.ids[i], Dist: DLog(probe, sig)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// SearchImage extracts the probe's signature and searches.
func (x *Index) SearchImage(probe *imaging.Image, k int) []Match {
	return x.Search(ExtractBIC(probe, x.quant), k)
}
