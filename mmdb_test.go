package mmdb_test

import (
	"path/filepath"
	"strings"
	"testing"

	mmdb "repro"
)

var (
	red  = mmdb.RGB{R: 204, G: 0, B: 0}
	blue = mmdb.RGB{R: 0, G: 51, B: 204}
)

func openMem(t *testing.T, opts ...mmdb.Option) *mmdb.DB {
	t.Helper()
	db, err := mmdb.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openMem(t)
	img := mmdb.NewFilledImage(10, 10, blue)
	id, err := db.InsertImage("bluesquare", img)
	if err != nil {
		t.Fatal(err)
	}
	seq := &mmdb.Sequence{BaseID: id, Ops: []mmdb.Op{
		mmdb.Modify{Old: blue, New: red},
	}}
	eid, err := db.InsertEdited("redsquare", seq)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("at least 50% blue")
	if err != nil {
		t.Fatal(err)
	}
	// Both the binary (exactly blue) and the edited (maybe still blue) match.
	if len(res.IDs) != 2 {
		t.Fatalf("ids %v", res.IDs)
	}
	res2, err := db.Query("at least 50% red")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.IDs) != 1 || res2.IDs[0] != eid {
		t.Fatalf("red ids %v", res2.IDs)
	}
}

func TestAugmentAndModes(t *testing.T) {
	db := openMem(t)
	a, _ := db.InsertImage("a", mmdb.NewFilledImage(16, 12, red))
	b, _ := db.InsertImage("b", mmdb.NewFilledImage(16, 12, blue))
	ids, err := db.Augment(a, mmdb.AugmentOptions{PerBase: 4, OpsPerImage: 3, NonWideningFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("augmented %d", len(ids))
	}
	if _, err := db.Augment(b, mmdb.AugmentOptions{PerBase: 2, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	st, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Catalog.Edited != 6 || st.Catalog.Binaries != 2 {
		t.Fatalf("stats %+v", st.Catalog)
	}
	q, err := db.ParseQuery("at least 30% red")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []mmdb.Mode{mmdb.ModeBWM, mmdb.ModeRBM, mmdb.ModeBWMIndexed, mmdb.ModeInstantiate} {
		if _, err := db.RangeQuery(q, mode); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestQueryByExample(t *testing.T) {
	db := openMem(t)
	db.InsertImage("r", mmdb.NewFilledImage(8, 8, red))
	target, _ := db.InsertImage("b", mmdb.NewFilledImage(8, 8, blue))
	probe := mmdb.NewFilledImage(8, 8, blue)
	matches, _, err := db.QueryByExample(probe, 1, mmdb.MetricL1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != target || matches[0].Dist != 0 {
		t.Fatalf("matches %v", matches)
	}
}

func TestPersistentFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facade.esidb")
	db, err := mmdb.Open(mmdb.WithPath(path), mmdb.WithPageSize(1024), mmdb.WithPoolPages(16))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := db.InsertImage("x", mmdb.NewFilledImage(12, 12, red))
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := mmdb.Open(mmdb.WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	img, err := db2.Image(id)
	if err != nil {
		t.Fatal(err)
	}
	if img.CountColor(red) != 144 {
		t.Fatal("raster lost across reopen")
	}
}

func TestSegmentedFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "segfacade.esidb")
	db, err := mmdb.Open(mmdb.WithPath(path), mmdb.WithSegmentStore(mmdb.SegmentOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := db.InsertImage("x", mmdb.NewFilledImage(12, 12, red))
	base, _ := db.InsertImage("base", mmdb.NewFilledImage(6, 6, blue))
	seq := &mmdb.Sequence{BaseID: base, Ops: mmdb.Recolor(mmdb.R(0, 0, 6, 6), [2]mmdb.RGB{blue, red})}
	eid, err := db.InsertEdited("e", seq)
	if err != nil {
		t.Fatal(err)
	}
	if !db.SetSegmentSketchSkip(true) {
		t.Fatal("segmented store should accept sketch-skip toggle")
	}
	if _, ok := db.SegmentStats(); !ok {
		t.Fatal("segmented store should expose engine stats")
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := mmdb.Open(mmdb.WithPath(path), mmdb.WithSegmentStore(mmdb.SegmentOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	img, err := db2.Image(id)
	if err != nil {
		t.Fatal(err)
	}
	if img.CountColor(red) != 144 {
		t.Fatal("raster lost across reopen")
	}
	res, err := db2.Query("at least 90% red")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rid := range res.IDs {
		if rid == eid {
			found = true
		}
	}
	if !found {
		t.Fatalf("edited image missing from query after reopen: %v", res.IDs)
	}
	man, ok := db2.SegmentManifest()
	if !ok {
		t.Fatal("segmented store should expose its manifest")
	}
	if len(man.Segments) == 0 {
		t.Fatal("sync should have sealed at least one segment")
	}
	chk, err := db2.CheckStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(chk.Problems) != 0 {
		t.Fatalf("store check problems: %v", chk.Problems)
	}
}

func TestExpandToBases(t *testing.T) {
	db := openMem(t)
	base, _ := db.InsertImage("base", mmdb.NewFilledImage(6, 6, blue))
	seq := &mmdb.Sequence{BaseID: base, Ops: mmdb.Recolor(mmdb.R(0, 0, 6, 6), [2]mmdb.RGB{blue, red})}
	eid, _ := db.InsertEdited("e", seq)
	res, err := db.Query("at least 90% red")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != eid {
		t.Fatalf("ids %v", res.IDs)
	}
	expanded := db.ExpandToBases(res.IDs)
	if len(expanded) != 2 || expanded[0] != base {
		t.Fatalf("expanded %v", expanded)
	}
}

func TestBuildersThroughFacade(t *testing.T) {
	db := openMem(t)
	base, _ := db.InsertImage("base", mmdb.NewFilledImage(8, 8, blue))
	ops := append(mmdb.CropTo(mmdb.R(0, 0, 4, 4)), mmdb.BoxBlur(mmdb.R(0, 0, 4, 4))...)
	eid, err := db.InsertEdited("crop", &mmdb.Sequence{BaseID: base, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	img, err := db.Image(eid)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 4 || img.H != 4 {
		t.Fatalf("instantiated %dx%d", img.W, img.H)
	}
	bin, err := db.BinForColor("blue")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Bounds(eid, bin)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := b.PctRange()
	if lo < 0 || hi > 1 || lo > hi {
		t.Fatalf("bounds [%v,%v]", lo, hi)
	}
}

func TestSynthesizeThroughFacade(t *testing.T) {
	base := mmdb.NewFilledImage(3, 3, red)
	target := mmdb.NewFilledImage(5, 2, blue)
	ops, err := mmdb.Synthesize(base, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("no ops synthesized")
	}
}

func TestColorVocabulary(t *testing.T) {
	names := mmdb.ColorNames()
	if len(names) < 10 {
		t.Fatalf("only %d colors", len(names))
	}
	c, ok := mmdb.LookupColor("red")
	if !ok || c != red {
		t.Fatalf("red = %v %v", c, ok)
	}
}

func TestStorageFootprint(t *testing.T) {
	db := openMem(t)
	id, _ := db.InsertImage("x", mmdb.NewFilledImage(20, 20, red))
	db.Augment(id, mmdb.AugmentOptions{PerBase: 5, Seed: 3})
	bin, ed, err := db.StorageFootprint()
	if err != nil {
		t.Fatal(err)
	}
	if bin != 1200 {
		t.Fatalf("binary bytes %d", bin)
	}
	if ed <= 0 || ed >= bin {
		t.Fatalf("edited bytes %d — the space saving is the point", ed)
	}
}

func TestSequenceTextFacade(t *testing.T) {
	seq := &mmdb.Sequence{BaseID: 4, Ops: []mmdb.Op{mmdb.Define{Region: mmdb.R(0, 0, 2, 2)}}}
	text := mmdb.FormatSequence(seq)
	got, err := mmdb.ParseSequence(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseID != 4 || len(got.Ops) != 1 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestOptimizeSequenceFacade(t *testing.T) {
	db := openMem(t)
	base, _ := db.InsertImage("b", mmdb.NewFilledImage(8, 8, blue))
	seq := &mmdb.Sequence{BaseID: base, Ops: []mmdb.Op{
		mmdb.Define{Region: mmdb.R(0, 0, 8, 8)}, // redundant: initial DR
		mmdb.Modify{Old: red, New: red},         // self recolor
		mmdb.Modify{Old: blue, New: red},        // effective
		mmdb.Define{Region: mmdb.R(0, 0, 2, 2)}, // trailing
	}}
	opt, err := db.OptimizeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Ops) != 1 {
		t.Fatalf("optimized to %v", opt.Ops)
	}
	// Both versions instantiate identically.
	a, _ := db.InsertEdited("orig", seq)
	b, _ := db.InsertEdited("opt", opt)
	imgA, _ := db.Image(a)
	imgB, _ := db.Image(b)
	if !imgA.Equal(imgB) {
		t.Fatal("optimized sequence instantiates differently")
	}
	// Unknown base errors.
	if _, err := db.OptimizeSequence(&mmdb.Sequence{BaseID: 999}); err == nil {
		t.Fatal("unknown base accepted")
	}
}

func TestWithQuantizerName(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.esidb")
	db, err := mmdb.Open(mmdb.WithPath(path), mmdb.WithQuantizerName("hsv12x2x2"))
	if err != nil {
		t.Fatal(err)
	}
	if db.Quantizer().Name() != "hsv12x2x2" {
		t.Fatalf("quantizer %q", db.Quantizer().Name())
	}
	id, _ := db.InsertImage("b", mmdb.NewFilledImage(8, 8, blue))
	db.Close()

	// Reopen with no quantizer option: adopted from the store.
	db2, err := mmdb.Open(mmdb.WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Quantizer().Name() != "hsv12x2x2" {
		t.Fatalf("adopted %q", db2.Quantizer().Name())
	}
	if _, err := db2.Image(id); err != nil {
		t.Fatal(err)
	}
	// Bad name surfaces as an Open error.
	if _, err := mmdb.Open(mmdb.WithQuantizerName("bogus99")); err == nil {
		t.Fatal("bogus quantizer name accepted")
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	src := openMem(t)
	// Two bases and edits including a target merge (id remapping matters).
	a, _ := src.InsertImage("alpha", mmdb.NewFilledImage(10, 8, red))
	b, _ := src.InsertImage("beta", mmdb.NewFilledImage(6, 6, blue))
	src.InsertEdited("recolor", &mmdb.Sequence{BaseID: a, Ops: mmdb.Recolor(mmdb.R(0, 0, 10, 8), [2]mmdb.RGB{red, blue})})
	src.InsertEdited("paste", &mmdb.Sequence{BaseID: a, Ops: mmdb.PasteOnto(mmdb.R(0, 0, 4, 4), b, 1, 1)})

	dir := t.TempDir()
	if err := src.DumpTo(dir); err != nil {
		t.Fatal(err)
	}

	// Load into a database with a shifted id space.
	dst := openMem(t)
	dst.InsertImage("preexisting", mmdb.NewFilledImage(3, 3, blue))
	n, err := dst.LoadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("loaded %d objects", n)
	}
	// Every loaded object materializes identically to its source twin.
	srcIDs := append(src.Binaries(), src.EditedIDs()...)
	dstIDs := append(dst.Binaries()[1:], dst.EditedIDs()...) // skip preexisting
	if len(srcIDs) != len(dstIDs) {
		t.Fatalf("object counts differ: %d vs %d", len(srcIDs), len(dstIDs))
	}
	for i := range srcIDs {
		want, err := src.Image(srcIDs[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.Image(dstIDs[i])
		if err != nil {
			t.Fatalf("materialize loaded %d: %v", dstIDs[i], err)
		}
		if !want.Equal(got) {
			t.Fatalf("object %d materializes differently after dump/load", i)
		}
	}
	// Queries work on the loaded database.
	if _, err := dst.Query("at least 10% red"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFromMissingManifest(t *testing.T) {
	db := openMem(t)
	if _, err := db.LoadFrom(t.TempDir()); err == nil {
		t.Fatal("load without manifest succeeded")
	}
}

func TestFacadeQueryVariants(t *testing.T) {
	db := openMem(t, mmdb.WithBackground(mmdb.RGB{R: 9, G: 9, B: 9}))
	a, _ := db.InsertImage("a", mmdb.NewFilledImage(8, 8, red))
	db.InsertImage("b", mmdb.NewFilledImage(8, 8, blue))

	// Compound through the facade.
	res, err := db.QueryCompound("at least 50% red or at least 50% blue", mmdb.ModeBWM)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 {
		t.Fatalf("compound ids %v", res.IDs)
	}
	c, err := db.ParseQuery("at least 50% red")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := db.CompoundQuery(mmdb.Compound{Terms: []mmdb.Range{c}}, mmdb.ModeRBM)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.IDs) != 1 || res2.IDs[0] != a {
		t.Fatalf("structured compound %v", res2.IDs)
	}

	// Cached-bounds mode through the facade.
	if err := db.WarmBoundsCache(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.BoundsCacheStats(); n != 0 {
		t.Fatalf("cache entries %d for zero edited images", n)
	}
	if _, err := db.QueryMode("at least 50% red", mmdb.ModeCachedBounds); err != nil {
		t.Fatal(err)
	}

	// WithinDistance through the facade.
	matches, st, err := db.WithinDistance(mmdb.NewFilledImage(8, 8, red), 0.01, mmdb.MetricL1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != a {
		t.Fatalf("within-distance %v", matches)
	}
	if st.BinariesScored != 2 {
		t.Fatalf("scored %d", st.BinariesScored)
	}

	// Multi-probe query by examples.
	fused, _, err := db.QueryByExamples([]*mmdb.Image{
		mmdb.NewFilledImage(8, 8, red), mmdb.NewFilledImage(8, 8, blue),
	}, 2, mmdb.MetricL2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) != 2 || fused[0].Dist != 0 || fused[1].Dist != 0 {
		t.Fatalf("fused %v", fused)
	}

	// KNNBinary facade.
	h := mmdb.ExtractHistogram(mmdb.NewFilledImage(8, 8, blue), db.Quantizer())
	bm, err := db.KNNBinary(mmdb.KNN{Target: h, K: 1, Metric: mmdb.MetricL2})
	if err != nil || len(bm) != 1 {
		t.Fatalf("knn binary %v %v", bm, err)
	}

	// BIC index facade.
	idx, err := db.BuildBICIndex()
	if err != nil {
		t.Fatal(err)
	}
	got := idx.SearchImage(mmdb.NewFilledImage(8, 8, red), 1)
	if len(got) != 1 || got[0].ID != a {
		t.Fatalf("bic search %v", got)
	}

	// Sync and CheckStore are no-ops in memory mode.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	check, err := db.CheckStore()
	if err != nil || !check.Ok() {
		t.Fatalf("memory check: %+v %v", check, err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Delete through the facade.
	if err := db.Delete(a); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(a); err == nil {
		t.Fatal("deleted object still present")
	}
	// EditedOf on a leaf binary is empty.
	if kids := db.EditedOf(2); len(kids) != 0 {
		t.Fatalf("kids %v", kids)
	}
}
