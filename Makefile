GO ?= go

# Pinned auxiliary linter versions — the single source of truth; CI's
# unconditional staticcheck/govulncheck steps and lint-deps both read them.
# `make lint` skips the tools (with a notice) only when they are not
# installed, so offline local runs still lint with esidb-lint + vet.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build test race vet fmt-check lint lint-tool lint-new lint-deps staticcheck govulncheck ci bench cluster-smoke replication-smoke crash-matrix obs-overhead-smoke index-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

lint-tool:
	$(GO) build -o bin/esidb-lint ./cmd/esidb-lint

# Fast inner loop while writing an analyzer: fixture tests + roster pin only,
# no whole-tree load.
lint-new:
	$(GO) test ./internal/analysis/ -run 'Fixture|SuiteComplete' -count=1

# Install the pinned auxiliary linters (network required; CI and one-time
# developer setup, never part of an offline build).
lint-deps:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Unconditional pinned runs — what CI uses; fails hard if the tool cannot run.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

lint: fmt-check vet lint-tool
	$(GO) vet -vettool=$(CURDIR)/bin/esidb-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (pin: honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (pin: golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

ci: lint build race cluster-smoke replication-smoke crash-matrix obs-overhead-smoke index-smoke

# End-to-end differential check: a 3-shard loopback HTTP cluster must
# answer range, compound and k-NN queries identically to a single node.
cluster-smoke:
	bash scripts/cluster-smoke.sh

# Replication fault drill: 2 shards × 2 replicas over loopback HTTP, load
# through the coordinator (semi-sync follower acks), kill a leader,
# promote its follower, and assert whole answers + accepted writes after.
replication-smoke:
	bash scripts/replication-smoke.sh

# Observability cost gate: always-on query statistics (tracing off) must
# cost the range-query hot path less than 3%.
obs-overhead-smoke:
	bash scripts/obs-overhead-smoke.sh

# S-tree sublinearity gate: on selective workloads the indexed mode must
# visit strictly fewer tree nodes per query than there are candidates.
index-smoke:
	bash scripts/index-smoke.sh

# Durability fault matrix: kill the store at every write/fsync budget,
# recover, and assert no acked write is lost, no unacked write half-applies,
# and the recovered store matches an uncrashed twin. The cluster package
# adds the replication legs: followers crashing mid-catch-up reopen and
# converge back to leader parity.
crash-matrix:
	$(GO) test -race -count=1 -run 'Crash|Recovery|WAL|Compact|Drain' ./internal/core/ ./internal/store/ ./internal/store/segment/ ./internal/server/ ./internal/cluster/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	rm -rf bin
