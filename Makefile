GO ?= go

.PHONY: all build test race vet fmt-check ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

ci: fmt-check vet build race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	rm -rf bin
