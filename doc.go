// Package mmdb is an embedded multimedia database for color-based image
// retrieval over augmented image collections, reproducing Brown &
// Gruenwald, "Speeding up Color-Based Retrieval in Multimedia Database
// Management Systems that Store Images as Sequences of Editing Operations"
// (ICDE 2006).
//
// The database stores two kinds of objects: binary images (rasters, with a
// color-histogram signature extracted at insert) and edited images, stored
// not as pixels but as a reference to a base image plus a sequence of
// editing operations (Define, Combine, Modify, Mutate, Merge). Color range
// queries — "retrieve all images that are at least 25% blue" — are answered
// without instantiating edited images, using per-operation rules that bound
// each image's possible histogram (the Rule-Based Method), accelerated by
// the paper's Bound-Widening Method data structure, which skips rule
// evaluation entirely for edited images whose operations are all
// bound-widening and whose base image already satisfies the query.
//
// # Quickstart
//
//	db, err := mmdb.Open()                       // in-memory database
//	id, err := db.InsertImage("photo", img)      // raster + histogram
//	seq := &mmdb.Sequence{BaseID: id, Ops: []mmdb.Op{
//		mmdb.Modify{Old: red, New: blue},
//	}}
//	eid, err := db.InsertEdited("photo-blue", seq)
//	res, err := db.Query("at least 25% blue")    // BWM execution
//
// Open with WithPath for a persistent database backed by a page store.
// See the examples directory for complete programs.
package mmdb
