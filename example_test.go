package mmdb_test

import (
	"fmt"
	"log"
	"strings"

	mmdb "repro"
)

// Example shows the minimal insert-edit-query loop: the edited image is
// stored as two operations and matched through rule bounds, never pixels.
func Example() {
	db, err := mmdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	blue, _ := mmdb.LookupColor("blue")
	redC, _ := mmdb.LookupColor("red")

	id, _ := db.InsertImage("square", mmdb.NewFilledImage(10, 10, blue))
	eid, _ := db.InsertEdited("square-red", &mmdb.Sequence{
		BaseID: id,
		Ops:    []mmdb.Op{mmdb.Modify{Old: blue, New: redC}},
	})

	res, _ := db.Query("at least 50% red")
	fmt.Println("matches:", res.IDs, "edited id:", eid)
	// Output: matches: [2] edited id: 2
}

// ExampleDB_QueryMode contrasts the paper's two methods on the same query:
// identical results, different rule-evaluation counts.
func ExampleDB_QueryMode() {
	db, _ := mmdb.Open()
	defer db.Close()

	blue, _ := mmdb.LookupColor("blue")
	green, _ := mmdb.LookupColor("green")
	base, _ := db.InsertImage("b", mmdb.NewFilledImage(8, 8, blue))
	for i := 0; i < 3; i++ {
		db.InsertEdited("edit", &mmdb.Sequence{
			BaseID: base,
			Ops:    []mmdb.Op{mmdb.Modify{Old: green, New: green}},
		})
	}

	rbm, _ := db.QueryMode("at least 50% blue", mmdb.ModeRBM)
	bwm, _ := db.QueryMode("at least 50% blue", mmdb.ModeBWM)
	fmt.Println("same results:", len(rbm.IDs) == len(bwm.IDs))
	fmt.Println("RBM rule evaluations:", rbm.Stats.OpsEvaluated)
	fmt.Println("BWM rule evaluations:", bwm.Stats.OpsEvaluated)
	// Output:
	// same results: true
	// RBM rule evaluations: 3
	// BWM rule evaluations: 0
}

// ExampleSynthesize demonstrates the operation set's completeness: any
// raster can be turned into any other.
func ExampleSynthesize() {
	redC, _ := mmdb.LookupColor("red")
	white, _ := mmdb.LookupColor("white")
	base := mmdb.NewFilledImage(2, 2, redC)
	target := mmdb.NewFilledImage(2, 2, white)
	target.Set(1, 1, redC)

	ops, _ := mmdb.Synthesize(base, target, nil)
	fmt.Println("operations:", len(ops))
	// Output: operations: 6
}

// ExampleParseSequence round-trips the text script format the CLI uses.
func ExampleParseSequence() {
	script := `base 7
define 0 0 32 32
modify #cc0000 #0033cc
merge null
`
	seq, _ := mmdb.ParseSequence(strings.NewReader(script))
	fmt.Printf("base=%d ops=%d\n", seq.BaseID, len(seq.Ops))
	fmt.Print(mmdb.FormatSequence(seq))
	// Output:
	// base=7 ops=3
	// base 7
	// define 0 0 32 32
	// modify #cc0000 #0033cc
	// merge null
}

// ExampleDB_ExpandToBases shows the paper's base↔edited connection: a match
// on an edited image also surfaces its original.
func ExampleDB_ExpandToBases() {
	db, _ := mmdb.Open()
	defer db.Close()
	blue, _ := mmdb.LookupColor("blue")
	redC, _ := mmdb.LookupColor("red")
	base, _ := db.InsertImage("original", mmdb.NewFilledImage(4, 4, blue))
	db.InsertEdited("variant", &mmdb.Sequence{
		BaseID: base,
		Ops:    []mmdb.Op{mmdb.Modify{Old: blue, New: redC}},
	})

	res, _ := db.Query("at least 90% red")
	fmt.Println("direct matches:", res.IDs)
	fmt.Println("with originals:", db.ExpandToBases(res.IDs))
	// Output:
	// direct matches: [2]
	// with originals: [1 2]
}

// ExampleDB_Bounds inspects the rule engine's conservative interval for an
// edited image: after a recolor, the image may be anywhere between 0% and
// 100% blue.
func ExampleDB_Bounds() {
	db, _ := mmdb.Open()
	defer db.Close()
	blue, _ := mmdb.LookupColor("blue")
	redC, _ := mmdb.LookupColor("red")
	base, _ := db.InsertImage("b", mmdb.NewFilledImage(10, 10, blue))
	eid, _ := db.InsertEdited("e", &mmdb.Sequence{
		BaseID: base,
		Ops:    []mmdb.Op{mmdb.Modify{Old: blue, New: redC}},
	})

	bin, _ := db.BinForColor("blue")
	b, _ := db.Bounds(eid, bin)
	lo, hi := b.PctRange()
	fmt.Printf("blue fraction ∈ [%.0f%%, %.0f%%]\n", lo*100, hi*100)
	// Output: blue fraction ∈ [0%, 100%]
}
