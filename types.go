package mmdb

import (
	"repro/internal/catalog"
	"repro/internal/colorspace"
	"repro/internal/core"
	"repro/internal/editops"
	"repro/internal/histogram"
	"repro/internal/imaging"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rbm"
	"repro/internal/rules"
	"repro/internal/signature"
	"repro/internal/store"
	"repro/internal/store/segment"
)

// Curated public surface: the library's value types are defined in internal
// packages and re-exported here so applications program against a single
// import.

// Raster types.
type (
	// Image is a W×H RGB raster stored row-major.
	Image = imaging.Image
	// RGB is a 24-bit color.
	RGB = imaging.RGB
	// Rect is a half-open rectangle, used for Defined Regions.
	Rect = imaging.Rect
)

// NewImage returns a zeroed w×h raster.
func NewImage(w, h int) *Image { return imaging.New(w, h) }

// NewFilledImage returns a w×h raster filled with c.
func NewFilledImage(w, h int, c RGB) *Image { return imaging.NewFilled(w, h, c) }

// R constructs a rectangle from two corners.
func R(x0, y0, x1, y1 int) Rect { return imaging.R(x0, y0, x1, y1) }

// Editing operation types (the paper's complete set).
type (
	// Op is one editing operation.
	Op = editops.Op
	// Define selects the Defined Region for subsequent operations.
	Define = editops.Define
	// Combine blurs the DR with a 3×3 weighted stencil.
	Combine = editops.Combine
	// Modify recolors DR pixels of one exact color to another.
	Modify = editops.Modify
	// Mutate rearranges DR pixels with an affine matrix.
	Mutate = editops.Mutate
	// Merge pastes the DR into a target image (or extracts it, with a null
	// target).
	Merge = editops.Merge
	// Sequence is an edited image: base reference plus operations.
	Sequence = editops.Sequence
)

// NullTarget is the Merge target meaning "no target image".
const NullTarget = editops.NullTarget

// Query types.
type (
	// Range is a color range query over one histogram bin.
	Range = query.Range
	// Compound is a multi-predicate query joined by And or Or.
	Compound = query.Compound
	// MultiRange is a range query over a set of bins (color families).
	MultiRange = query.MultiRange
	// KNN is a k-nearest-neighbor similarity query.
	KNN = query.KNN
	// Metric selects the histogram distance for KNN queries.
	Metric = query.Metric
	// Result is a range-query answer: matching ids plus execution stats.
	Result = rbm.Result
	// QueryStats instruments a range-query execution.
	QueryStats = rbm.Stats
	// Match is one KNN result.
	Match = core.Match
	// KNNStats instruments a KNN execution.
	KNNStats = core.KNNStats
)

// Compound connectives.
const (
	// QueryAnd intersects compound terms.
	QueryAnd = query.And
	// QueryOr unions them.
	QueryOr = query.Or
)

// Distance metrics.
const (
	MetricL1           = query.MetricL1
	MetricL2           = query.MetricL2
	MetricIntersection = query.MetricIntersection
)

// ErrWALTruncated reports a WAL tail cursor below the checkpoint floor:
// the follower must re-seed from a snapshot (see DB.WALTail).
var ErrWALTruncated = store.ErrWALTruncated

// ErrNoWAL reports a WAL operation against a database without a
// write-ahead log (in-memory databases).
var ErrNoWAL = core.ErrNoWAL

// Mode selects the range-query execution strategy.
type Mode = core.Mode

// Execution modes.
const (
	// ModeBWM is the paper's Bound-Widening Method (default).
	ModeBWM = core.ModeBWM
	// ModeRBM is the Rule-Based Method baseline.
	ModeRBM = core.ModeRBM
	// ModeBWMIndexed serves the base probe from the R-tree index.
	ModeBWMIndexed = core.ModeBWMIndexed
	// ModeInstantiate is the exact (expensive) ground truth.
	ModeInstantiate = core.ModeInstantiate
	// ModeCachedBounds answers from precomputed bounds vectors (memory for
	// speed; identical results to RBM/BWM).
	ModeCachedBounds = core.ModeCachedBounds
	// ModeIndexed answers from the bounds S-tree: a spatial index over
	// per-candidate histogram bound boxes that prunes whole subtrees whose
	// union box provably misses the query (identical results to a scan).
	ModeIndexed = core.ModeIndexed
)

// Mode registry helpers.
var (
	// AllModes lists every execution mode in a stable order.
	AllModes = core.AllModes
	// ModeNames lists every execution mode's string form, for CLI help and
	// error messages.
	ModeNames = core.ModeNames
	// ParseMode resolves a mode name ("bwm", "rbm", "bwm-indexed",
	// "instantiate", "cached", "indexed"); the empty string selects the
	// default (ModeBWM). Unknown names get an error enumerating the valid
	// set.
	ParseMode = core.ParseMode
)

// QueryOption configures one query execution on the canonical *Ctx query
// methods. A Mode value is itself a QueryOption selecting the execution
// strategy; see also WithMode, WithTrace, and WithLimit.
type QueryOption = core.QueryOption

// Query option constructors.
var (
	// WithMode selects the execution strategy (equivalent to passing the
	// Mode value directly).
	WithMode = core.WithMode
	// WithTrace records per-phase timings and decision counts into a Trace
	// (nil disables tracing).
	WithTrace = core.WithTrace
	// WithLimit truncates the result id list to the first n ids after the
	// deterministic sort.
	WithLimit = core.WithLimit
)

// Trace records per-phase timings and decision counts for one query. All
// methods are nil-safe, so a nil *Trace disables tracing.
type Trace = obs.Trace

// NewTrace returns an empty query trace for use with the *Traced query
// variants.
func NewTrace() *Trace { return obs.NewTrace() }

// BIC (border/interior classification) signature types.
type (
	// BICIndex is an in-memory BIC search structure.
	BICIndex = signature.Index
	// BICMatch is one BIC search result.
	BICMatch = signature.Match
	// BICSignature is a border/interior histogram pair.
	BICSignature = signature.BIC
)

// ExtractBIC computes a raster's BIC signature under a quantizer.
var ExtractBIC = signature.ExtractBIC

// Signature and rule types.
type (
	// Histogram is a color-histogram signature.
	Histogram = histogram.Histogram
	// Bounds brackets an edited image's possible pixel count for one bin.
	Bounds = rules.Bounds
	// Quantizer maps colors to histogram bins.
	Quantizer = colorspace.Quantizer
	// Object is a catalog entry.
	Object = catalog.Object
	// Stats aggregates database statistics.
	Stats = core.DBStats
	// StoreCheck is the result of a page-store integrity scan.
	StoreCheck = store.CheckResult
	// WALStats reports write-ahead-log activity (see DB.WALStats).
	WALStats = store.WALStats
	// SegmentOptions tunes the segmented storage engine (see
	// WithSegmentStore).
	SegmentOptions = segment.Options
	// SegmentStats reports segmented-engine activity (see DB.SegmentStats).
	SegmentStats = segment.EngineStats
	// SegmentManifest lists a segmented database's live segments.
	SegmentManifest = segment.Manifest
	// WALFrame is one replicated write-ahead-log record (see DB.WALTail).
	WALFrame = store.WALRecord
	// WALTailResult is one page of the WAL replication stream.
	WALTailResult = store.WALTailResult
	// Plan is a range-query execution plan (see DB.Explain).
	Plan = core.Plan
)

// Object kinds.
const (
	KindBinary = catalog.KindBinary
	KindEdited = catalog.KindEdited
)

// Convenience re-exports for building edit sequences.
var (
	// BoxBlur returns Define + uniform 3×3 Combine.
	BoxBlur = editops.BoxBlur
	// GaussianBlur returns Define + binomial 3×3 Combine.
	GaussianBlur = editops.GaussianBlur
	// Recolor returns Define + Modify per color pair.
	Recolor = editops.Recolor
	// TranslateRegion returns Define + rigid Mutate shifting the region.
	TranslateRegion = editops.TranslateRegion
	// RotateRegion returns Define + rigid Mutate rotating about the
	// region's center.
	RotateRegion = editops.RotateRegion
	// FlipHorizontal mirrors the region across its vertical center line.
	FlipHorizontal = editops.FlipHorizontal
	// ScaleImage resizes the whole image.
	ScaleImage = editops.ScaleImage
	// CropTo crops the image to a region.
	CropTo = editops.CropTo
	// PasteOnto pastes a region onto a target image.
	PasteOnto = editops.PasteOnto
	// Synthesize produces a sequence transforming one raster into another
	// (the operation set's completeness property).
	Synthesize = editops.Synthesize
)

// Quantizer constructors.
var (
	// NewRGBQuantizer uniformly quantizes RGB into n³ bins.
	NewRGBQuantizer = colorspace.NewUniformRGB
	// NewHSVQuantizer uniformly quantizes HSV.
	NewHSVQuantizer = colorspace.NewUniformHSV
	// NewLuvQuantizer uniformly quantizes CIE L*u*v*.
	NewLuvQuantizer = colorspace.NewUniformLuv
)

// ExtractHistogram computes an image's histogram under a quantizer.
func ExtractHistogram(img *Image, q Quantizer) *Histogram {
	return histogram.Extract(img, q)
}

// Raster codec re-exports.
var (
	// ReadPPMFile decodes a PPM (P3/P6) file.
	ReadPPMFile = imaging.ReadPPMFile
	// WritePPMFile encodes a raster as binary PPM.
	WritePPMFile = imaging.WritePPMFile
	// DecodePPM reads PPM from a reader.
	DecodePPM = imaging.DecodePPM
	// EncodePPM writes binary PPM to a writer.
	EncodePPM = imaging.EncodePPM
	// DecodePNG reads PNG from a reader.
	DecodePNG = imaging.DecodePNG
	// EncodePNG writes PNG to a writer.
	EncodePNG = imaging.EncodePNG
)

// Sequence codec re-exports.
var (
	// ParseSequence parses the text sequence format.
	ParseSequence = editops.ParseText
	// FormatSequence renders a sequence in the text format.
	FormatSequence = editops.FormatText
)
