#!/usr/bin/env bash
# replication-smoke: end-to-end check of the replicated cluster.
#
# Stands up 2 shards × 2 replicas as `esidb serve` processes (each
# follower started with -replica-of), loads a corpus through the
# coordinator (writes are semi-synchronously acked by a follower), then:
#   - asserts query parity with a single node holding all the data,
#   - asserts the merged trace tree covers every shard,
#   - kills one leader, promotes its follower, and asserts the cluster
#     still answers whole queries and takes writes,
#   - asserts the surviving replica's slow-query log is non-empty.
# Exits nonzero on any failure. This is the CI replication-smoke job; it
# needs nothing beyond a Go toolchain and a POSIX userland.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/replication-smoke.XXXXXX")"
BIN="$WORK/bin"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

cd "$ROOT"
echo "== build"
go build -o "$BIN/" ./cmd/esidb ./cmd/datagen

ESIDB="$BIN/esidb"
# s0 leader/follower, s1 leader/follower
P_S0=8821 P_S0R1=8822 P_S1=8823 P_S1R1=8824

echo "== corpus"
"$BIN/datagen" -kind flag -n 10 -w 32 -h 24 -seed 11 -out "$WORK/imgs" >/dev/null
"$ESIDB" create -db "$WORK/seed.esidb" >/dev/null
for img in "$WORK"/imgs/*.ppm; do
  "$ESIDB" insert -db "$WORK/seed.esidb" "$img" >/dev/null
done
for id in $(seq 1 10); do
  "$ESIDB" augment -db "$WORK/seed.esidb" -id "$id" -per 2 -ops 4 \
    -nonwidening 0.3 -seed "$id" >/dev/null
done
"$ESIDB" dump -db "$WORK/seed.esidb" -out "$WORK/dump" >/dev/null

echo "== single node"
"$ESIDB" create -db "$WORK/single.esidb" >/dev/null
"$ESIDB" load -db "$WORK/single.esidb" -in "$WORK/dump" >/dev/null

echo "== replicated cluster (2 shards x 2 replicas)"
cat > "$WORK/map.json" <<EOF
{"shards": [
  {"id": "s0", "addr": "http://127.0.0.1:$P_S0",
   "replicas": [{"id": "s0-r1", "addr": "http://127.0.0.1:$P_S0R1"}]},
  {"id": "s1", "addr": "http://127.0.0.1:$P_S1",
   "replicas": [{"id": "s1-r1", "addr": "http://127.0.0.1:$P_S1R1"}]}
]}
EOF
S0_PID=""
for node in "s0:$P_S0::" "s0-r1:$P_S0R1:http://127.0.0.1:$P_S0:" \
            "s1:$P_S1::" "s1-r1:$P_S1R1:http://127.0.0.1:$P_S1:"; do
  id="${node%%:*}"; rest="${node#*:}"
  port="${rest%%:*}"; leader="${rest#*:}"; leader="${leader%:}"
  "$ESIDB" create -db "$WORK/$id.esidb" >/dev/null
  if [ -n "$leader" ]; then
    "$ESIDB" serve -db "$WORK/$id.esidb" -addr "127.0.0.1:$port" \
      -replica-id "$id" -replica-of "$leader" >"$WORK/$id.log" 2>&1 &
  else
    "$ESIDB" serve -db "$WORK/$id.esidb" -addr "127.0.0.1:$port" \
      -replica-id "$id" >"$WORK/$id.log" 2>&1 &
  fi
  PIDS+=($!)
  if [ "$id" = "s0" ]; then S0_PID=$!; fi
done

for attempt in $(seq 1 50); do
  if "$ESIDB" cluster replicas -map "$WORK/map.json" >/dev/null 2>&1; then
    break
  fi
  if [ "$attempt" -eq 50 ]; then
    echo "FAIL: replicas never came up" >&2
    cat "$WORK"/s*.log >&2
    exit 1
  fi
  sleep 0.2
done
"$ESIDB" cluster replicas -map "$WORK/map.json"

echo "== load through the coordinator (semi-sync replicated writes)"
"$ESIDB" cluster load -map "$WORK/map.json" -in "$WORK/dump"
"$ESIDB" cluster stats -map "$WORK/map.json"

echo "== differential queries (replicated cluster vs single node)"
QUERIES=(
  "at least 25% blue"
  "between 10% and 60% green"
  "at least 20% red and at least 10% blue"
)
fail=0
for q in "${QUERIES[@]}"; do
  for mode in bwm rbm; do
    "$ESIDB" query -db "$WORK/single.esidb" -mode "$mode" -ids "$q" \
      | sort -n > "$WORK/want.txt"
    "$ESIDB" cluster query -map "$WORK/map.json" -mode "$mode" -ids "$q" \
      | sort -n > "$WORK/got.txt"
    if ! diff -u "$WORK/want.txt" "$WORK/got.txt"; then
      echo "FAIL: [$mode] \"$q\" diverged" >&2
      fail=1
    else
      echo "ok [$mode] \"$q\" ($(wc -l < "$WORK/want.txt") ids)"
    fi
  done
done

echo "== distributed trace over replica sets"
# One merged tree: a single trace id, a shard:<id> span per shard, and a
# replica:<id> leg under each shard span showing which member served it.
"$ESIDB" cluster query -map "$WORK/map.json" -trace-json \
  "at least 25% blue" > "$WORK/trace.json"
sed -n '/"spans":/,$p' "$WORK/trace.json" > "$WORK/spans.json"
trace_ids=$(grep -o '"trace_id": *"[0-9a-f]*"' "$WORK/trace.json" | sort -u | wc -l)
shard_spans=$(grep -c '"name": *"shard:' "$WORK/spans.json" || true)
replica_spans=$(grep -c '"name": *"replica:' "$WORK/spans.json" || true)
if [ "$trace_ids" -ne 1 ]; then
  echo "FAIL: merged trace carries $trace_ids distinct trace ids, want 1" >&2
  fail=1
elif [ "$shard_spans" -ne 2 ]; then
  echo "FAIL: merged trace has $shard_spans shard spans, want 2" >&2
  fail=1
elif [ "$replica_spans" -lt 2 ]; then
  echo "FAIL: merged trace has $replica_spans replica legs, want >= 2" >&2
  fail=1
else
  echo "ok trace: 1 trace id, $shard_spans shard spans, $replica_spans replica legs"
fi

echo "== failover: kill s0's leader, promote its follower"
kill "$S0_PID"
wait "$S0_PID" 2>/dev/null || true
"$ESIDB" cluster promote -map "$WORK/map.json" -shard s0
grep -q "$P_S0R1" "$WORK/map.json" || {
  echo "FAIL: promoted map does not route s0 at the follower" >&2
  exit 1
}

echo "== post-failover queries and writes"
for q in "${QUERIES[@]}"; do
  "$ESIDB" query -db "$WORK/single.esidb" -mode bwm -ids "$q" \
    | sort -n > "$WORK/want.txt"
  "$ESIDB" cluster query -map "$WORK/map.json" -mode bwm -ids "$q" \
    2>"$WORK/qerr.txt" | sort -n > "$WORK/got.txt"
  if grep -q "partial" "$WORK/qerr.txt"; then
    echo "FAIL: post-failover query \"$q\" was partial" >&2
    cat "$WORK/qerr.txt" >&2
    fail=1
  elif ! diff -u "$WORK/want.txt" "$WORK/got.txt"; then
    echo "FAIL: post-failover \"$q\" diverged" >&2
    fail=1
  else
    echo "ok post-failover \"$q\" ($(wc -l < "$WORK/want.txt") ids)"
  fi
done
# The promoted node takes writes again: reload the dump on top (ids
# remap; this only needs inserts to succeed, parity was checked above).
"$ESIDB" cluster load -map "$WORK/map.json" -in "$WORK/dump" >/dev/null
echo "ok post-failover writes accepted"

echo "== slow-query log on the promoted replica"
qlog=$("$ESIDB" querylog -addr "http://127.0.0.1:$P_S0R1")
if ! echo "$qlog" | grep -q "query"; then
  echo "FAIL: promoted replica's query log is empty after the workload" >&2
  echo "$qlog" >&2
  fail=1
else
  echo "ok querylog: promoted replica recorded query events"
fi

if [ "$fail" -ne 0 ]; then
  echo "replication-smoke: FAILED" >&2
  exit 1
fi
echo "replication-smoke: OK"
