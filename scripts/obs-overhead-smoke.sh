#!/usr/bin/env bash
# Observability-overhead gate: the always-on statistics recorder (tracing
# off, the production default) must cost the range-query hot path less than
# 3% over a recorder that is disabled outright. Runs `benchfig -exp
# obsoverhead` and asserts the stats-on point's overhead_pct from the JSON
# document it emits. One retry damps a noisy runner: the bound is on the
# best observed run, since scheduler noise only ever inflates the number.
set -euo pipefail
cd "$(dirname "$0")/.."

LIMIT_PCT=3
ATTEMPTS=2

extract_stats_on_pct() {
    # Pull the stats-on point's overhead_pct out of the JSON tail of the
    # benchfig output (stdlib-only repo: no jq dependency).
    awk '
        /"mode": "stats-on"/ { inpoint = 1 }
        inpoint && /"overhead_pct"/ {
            gsub(/[^0-9.eE+-]/, "", $2); print $2; exit
        }
    '
}

best=""
for i in $(seq 1 "$ATTEMPTS"); do
    out=$(go run ./cmd/benchfig -exp obsoverhead)
    echo "$out" | sed -n '1,5p'
    pct=$(echo "$out" | extract_stats_on_pct)
    if [ -z "$pct" ]; then
        echo "FAIL: could not extract stats-on overhead_pct from benchfig output" >&2
        exit 1
    fi
    echo "attempt $i: stats-on overhead ${pct}%"
    if [ -z "$best" ] || awk -v a="$pct" -v b="$best" 'BEGIN { exit !(a+0 < b+0) }'; then
        best="$pct"
    fi
    if awk -v p="$pct" -v lim="$LIMIT_PCT" 'BEGIN { exit !(p+0 < lim) }'; then
        echo "PASS: always-on statistics overhead ${pct}% < ${LIMIT_PCT}%"
        exit 0
    fi
done

echo "FAIL: always-on statistics overhead ${best}% >= ${LIMIT_PCT}% across ${ATTEMPTS} attempts" >&2
exit 1
