#!/usr/bin/env bash
# S-tree index gate: on the selective workloads ("medium" and "narrow"),
# the indexed mode's per-query node-visit count must be strictly below the
# candidate count — the whole point of the bounds tree is to not look at
# every candidate — and above zero (proof the tree actually ran). Runs
# `benchfig -exp index` and asserts every selective indexed point in the
# JSON document it emits. Wall-clock is deliberately not gated: timings are
# runner-dependent, node visits are deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go run ./cmd/benchfig -exp index)
echo "$out" | sed -n '1,20p'

echo "$out" | awk '
    function val(s) { gsub(/[^0-9.eE+-]/, "", s); return s + 0 }
    /"candidates"/  { cand = val($2) }
    /"selectivity"/ { sel = $2; gsub(/[",]/, "", sel) }
    /"mode"/        { mode = $2; gsub(/[",]/, "", mode) }
    /"nodes_visited"/ {
        if (mode == "indexed" && sel != "broad") {
            checked++
            nodes = val($2)
            printf "indexed %s @ %d candidates: %d nodes/query\n", sel, cand, nodes
            if (nodes <= 0 || nodes >= cand) {
                printf "FAIL: nodes/query %d not in (0, %d) for %s workload\n", nodes, cand, sel
                bad = 1
            }
        }
    }
    END {
        if (checked == 0) { print "FAIL: no selective indexed points found in output"; exit 1 }
        if (bad) exit 1
        printf "PASS: %d selective indexed points all visit fewer nodes than candidates\n", checked
    }
'
