#!/usr/bin/env bash
# cluster-smoke: end-to-end differential check of the sharded cluster.
#
# Builds the CLI, synthesizes a corpus, loads it into (a) one node and
# (b) a 3-shard loopback cluster of `esidb serve` processes, and asserts
# id-level parity between the two for range, compound and k-NN queries.
# Exits nonzero on any mismatch. This is the script the CI cluster-smoke
# job runs; it needs nothing beyond a Go toolchain and a POSIX userland.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/cluster-smoke.XXXXXX")"
BIN="$WORK/bin"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

cd "$ROOT"
echo "== build"
go build -o "$BIN/" ./cmd/esidb ./cmd/datagen

ESIDB="$BIN/esidb"
P0=8801 P1=8802 P2=8803

echo "== corpus"
"$BIN/datagen" -kind flag -n 12 -w 32 -h 24 -seed 7 -out "$WORK/imgs" >/dev/null
"$ESIDB" create -db "$WORK/seed.esidb" >/dev/null
for img in "$WORK"/imgs/*.ppm; do
  "$ESIDB" insert -db "$WORK/seed.esidb" "$img" >/dev/null
done
for id in $(seq 1 12); do
  "$ESIDB" augment -db "$WORK/seed.esidb" -id "$id" -per 3 -ops 4 \
    -nonwidening 0.3 -seed "$id" >/dev/null
done
"$ESIDB" dump -db "$WORK/seed.esidb" -out "$WORK/dump" >/dev/null

echo "== single node"
"$ESIDB" create -db "$WORK/single.esidb" >/dev/null
"$ESIDB" load -db "$WORK/single.esidb" -in "$WORK/dump" >/dev/null

echo "== cluster (3 shards)"
cat > "$WORK/map.json" <<EOF
{"shards": [
  {"id": "s0", "addr": "http://127.0.0.1:$P0"},
  {"id": "s1", "addr": "http://127.0.0.1:$P1"},
  {"id": "s2", "addr": "http://127.0.0.1:$P2"}
]}
EOF
for i in 0 1 2; do
  port=$((8801 + i))
  "$ESIDB" create -db "$WORK/s$i.esidb" >/dev/null
  "$ESIDB" serve -db "$WORK/s$i.esidb" -addr "127.0.0.1:$port" \
    -shard-id "s$i" -shard-map "$WORK/map.json" >"$WORK/s$i.log" 2>&1 &
  PIDS+=($!)
done

for attempt in $(seq 1 50); do
  if "$ESIDB" cluster health -map "$WORK/map.json" >/dev/null 2>&1; then
    break
  fi
  if [ "$attempt" -eq 50 ]; then
    echo "FAIL: shards never came up" >&2
    cat "$WORK"/s*.log >&2
    exit 1
  fi
  sleep 0.2
done
"$ESIDB" cluster health -map "$WORK/map.json"

"$ESIDB" cluster load -map "$WORK/map.json" -in "$WORK/dump"
"$ESIDB" cluster stats -map "$WORK/map.json"

echo "== differential queries"
QUERIES=(
  "at least 25% blue"
  "at most 40% red"
  "between 10% and 60% green"
  "at least 20% red and at least 10% blue"
  "at least 60% yellow or at least 20% white"
)
fail=0
for q in "${QUERIES[@]}"; do
  for mode in bwm rbm; do
    "$ESIDB" query -db "$WORK/single.esidb" -mode "$mode" -ids "$q" \
      | sort -n > "$WORK/want.txt"
    "$ESIDB" cluster query -map "$WORK/map.json" -mode "$mode" -ids "$q" \
      | sort -n > "$WORK/got.txt"
    if ! diff -u "$WORK/want.txt" "$WORK/got.txt"; then
      echo "FAIL: [$mode] \"$q\" diverged" >&2
      fail=1
    else
      echo "ok [$mode] \"$q\" ($(wc -l < "$WORK/want.txt") ids)"
    fi
  done
done

echo "== differential k-NN"
probe="$(ls "$WORK"/imgs/*.ppm | head -1)"
for metric in l1 l2; do
  "$ESIDB" similar -db "$WORK/single.esidb" -k 5 -metric "$metric" "$probe" \
    | awk 'NF>1 && $1+0==$1 {print $1}' > "$WORK/want.txt"
  "$ESIDB" cluster similar -map "$WORK/map.json" -k 5 -metric "$metric" "$probe" \
    | awk 'NF>1 && $1+0==$1 {print $1}' > "$WORK/got.txt"
  if ! diff -u "$WORK/want.txt" "$WORK/got.txt"; then
    echo "FAIL: k-NN ($metric) diverged" >&2
    fail=1
  else
    echo "ok k-NN $metric ($(wc -l < "$WORK/want.txt") neighbors)"
  fi
done

echo "== distributed trace"
# A traced scatter-gather query must come back as ONE merged span tree:
# a single trace id shared by the coordinator and every shard subtree
# (propagated via the traceparent header), a shard:<id> span per shard,
# and — since the shard stores are WAL-backed — each shard's
# wal.commit-barrier span adopted into the tree.
"$ESIDB" cluster query -map "$WORK/map.json" -trace-json \
  "at least 25% blue" > "$WORK/trace.json"
# The trace document also carries a legacy flat "phases" view that repeats
# span names; count spans only inside the "spans" tree.
sed -n '/"spans":/,$p' "$WORK/trace.json" > "$WORK/spans.json"
trace_ids=$(grep -o '"trace_id": *"[0-9a-f]*"' "$WORK/trace.json" | sort -u | wc -l)
shard_spans=$(grep -c '"name": *"shard:' "$WORK/spans.json" || true)
wal_spans=$(grep -c '"name": *"wal.commit-barrier"' "$WORK/spans.json" || true)
if [ "$trace_ids" -ne 1 ]; then
  echo "FAIL: merged trace carries $trace_ids distinct trace ids, want 1" >&2
  fail=1
elif [ "$shard_spans" -ne 3 ]; then
  echo "FAIL: merged trace has $shard_spans shard spans, want 3" >&2
  fail=1
elif [ "$wal_spans" -lt 3 ]; then
  echo "FAIL: merged trace has $wal_spans wal.commit-barrier spans, want >= 3" >&2
  fail=1
else
  echo "ok trace: 1 trace id, $shard_spans shard spans, $wal_spans WAL-commit spans"
fi

echo "== slow-query log"
# Always-on wide events: after the workload above, the serving shards'
# /debug/querylog must hold recorded query events.
# Capture first: grep -q closing the pipe early would SIGPIPE the CLI and
# trip pipefail even on a match.
qlog=$("$ESIDB" querylog -addr "http://127.0.0.1:$P0")
if ! echo "$qlog" | grep -q "query"; then
  echo "FAIL: shard s0 query log is empty after the workload" >&2
  echo "$qlog" >&2
  fail=1
else
  echo "ok querylog: shard s0 recorded query events"
fi

if [ "$fail" -ne 0 ]; then
  echo "cluster-smoke: FAILED" >&2
  exit 1
fi
echo "cluster-smoke: OK"
