// Helmets: the paper's second evaluation scenario — logo-style recognition
// over college-football-helmet images — demonstrating query-by-example
// (k-NN) with bound-based pruning of edited images, and persistence: the
// database is written to disk, reopened, and queried again.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	mmdb "repro"
	"repro/internal/dataset"
)

func main() {
	dir, err := os.MkdirTemp("", "helmets-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "helmets.esidb")

	db, err := mmdb.Open(mmdb.WithPath(path))
	if err != nil {
		log.Fatal(err)
	}

	helmets := dataset.Helmets(25, 64, 48, 3)
	for _, h := range helmets {
		if _, err := db.InsertImage(h.Name, h.Img); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range db.Binaries() {
		if _, err := db.Augment(id, mmdb.AugmentOptions{
			PerBase: 3, OpsPerImage: 5, NonWideningFrac: 0.15, Seed: int64(id),
		}); err != nil {
			log.Fatal(err)
		}
	}
	st, _ := db.Stats()
	fmt.Printf("database: %d helmets + %d edited versions\n", st.Catalog.Binaries, st.Catalog.Edited)

	// Query by example: a "game photo" of a helmet we have never stored —
	// a freshly generated one from the same family.
	probe := dataset.Helmets(1, 64, 48, 42)[0]
	matches, knnStats, err := db.QueryByExample(probe.Img, 5, mmdb.MetricL1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5 nearest neighbors of a new %s photo:\n", probe.Name)
	for _, m := range matches {
		obj, _ := db.Get(m.ID)
		fmt.Printf("  %6d  %-8s %-24s dist=%.4f\n", m.ID, obj.Kind, obj.Name, m.Dist)
	}
	fmt.Printf("bound pruning skipped %d of %d edited images without instantiation\n",
		knnStats.EditedPruned, knnStats.EditedPruned+knnStats.EditedInstantiated)

	// Persist and reopen: everything (rasters, scripts, classifications)
	// survives in the single store file.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db2, err := mmdb.Open(mmdb.WithPath(path))
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query("at least 20% maroon")
	if err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("\nreopened %s (%d bytes): \"at least 20%% maroon\" -> %d matches\n",
		filepath.Base(path), info.Size(), len(res.IDs))
}
