// Flags: the paper's first evaluation scenario. A database of world-flag
// images is augmented with edited versions (recolors, blurs, crops,
// rotations — stored as operation sequences), then color range queries are
// answered with both RBM and BWM and their execution statistics compared.
package main

import (
	"fmt"
	"log"

	mmdb "repro"
	"repro/internal/dataset"
)

func main() {
	db, err := mmdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// 40 synthetic flags standing in for the paper's flags.net scrape.
	flags := dataset.Flags(40, 60, 40, 7)
	for _, f := range flags {
		if _, err := db.InsertImage(f.Name, f.Img); err != nil {
			log.Fatal(err)
		}
	}
	// Augmentation: 4 edited versions per flag, 30% of them containing a
	// non-bound-widening operation (a paste onto another flag).
	for _, id := range db.Binaries() {
		if _, err := db.Augment(id, mmdb.AugmentOptions{
			PerBase: 4, OpsPerImage: 4, NonWideningFrac: 0.3, Seed: int64(id),
		}); err != nil {
			log.Fatal(err)
		}
	}
	st, _ := db.Stats()
	fmt.Printf("database: %d flags + %d edited versions (%d widening-only, %d non-widening)\n",
		st.Catalog.Binaries, st.Catalog.Edited, st.Catalog.WideningOnly, st.Catalog.NonWidening)

	queries := []string{
		"at least 30% red",
		"at least 40% blue",
		"between 20% and 50% white",
		"at most 5% green",
	}
	fmt.Printf("\n%-28s %8s %12s %12s %10s\n", "query", "matches", "RBM rules", "BWM rules", "skipped")
	for _, qtext := range queries {
		rbmRes, err := db.QueryMode(qtext, mmdb.ModeRBM)
		if err != nil {
			log.Fatal(err)
		}
		bwmRes, err := db.QueryMode(qtext, mmdb.ModeBWM)
		if err != nil {
			log.Fatal(err)
		}
		if len(rbmRes.IDs) != len(bwmRes.IDs) {
			log.Fatalf("BWM and RBM disagree on %q", qtext)
		}
		fmt.Printf("%-28s %8d %12d %12d %10d\n", qtext,
			len(bwmRes.IDs), rbmRes.Stats.OpsEvaluated, bwmRes.Stats.OpsEvaluated,
			bwmRes.Stats.EditedSkipped)
	}

	// Show one matched edited flag's stored script: this is ALL the
	// database keeps for it.
	res, _ := db.Query("at least 30% red")
	for _, id := range res.IDs {
		obj, _ := db.Get(id)
		if obj.Kind == mmdb.KindEdited {
			fmt.Printf("\nstored representation of match %d (%s):\n%s",
				id, obj.Name, mmdb.FormatSequence(obj.Seq))
			break
		}
	}
}
