// Webgallery: the database as a service. Starts the HTTP server on a local
// port, then drives it purely through the Go client — remote inserts,
// augmentation, compound color queries and query-by-example — the way a
// gallery front-end would use ESIDB without linking the engine.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	mmdb "repro"
	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/server"
)

func main() {
	// The "database server" side: an in-memory DB behind the HTTP handler.
	db, err := mmdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(db)}
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("gallery server on %s\n\n", baseURL)

	// The "front-end" side: everything below talks HTTP only.
	c := client.New(baseURL, nil)

	// Upload a small gallery of road signs.
	signs := dataset.RoadSigns(8, 48, 48, 21)
	var firstID uint64
	for _, s := range signs {
		obj, err := c.InsertImage(s.Name, s.Img)
		if err != nil {
			log.Fatal(err)
		}
		if firstID == 0 {
			firstID = obj.ID
		}
	}
	fmt.Printf("uploaded %d signs\n", len(signs))

	// Ask the server to augment the first sign with edited variants.
	edited, err := c.Augment(firstID, mmdb.AugmentOptions{PerBase: 3, OpsPerImage: 3, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server-side augmentation of sign %d -> edited ids %v\n", firstID, edited)

	// Compound color query over the wire.
	res, err := c.Query("at least 15% red or at least 15% blue", "bwm", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\"at least 15%% red or at least 15%% blue\" -> %d matches "+
		"(%d rule evaluations, %d edited skipped)\n",
		len(res.IDs), res.Stats.OpsEvaluated, res.Stats.EditedSkipped)
	for _, obj := range res.Objects[:min(4, len(res.Objects))] {
		fmt.Printf("  %6d  %-8s %s\n", obj.ID, obj.Kind, obj.Name)
	}

	// Query by example: a fresh sign photo, uploaded as the probe body.
	probe := dataset.RoadSigns(1, 48, 48, 99)[0]
	matches, err := c.Similar(probe.Img, 3, "intersection")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3 nearest neighbors of a new %s probe:\n", probe.Name)
	for _, m := range matches {
		obj, err := c.Get(m.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6d  %-8s %-20s dist=%.4f\n", m.ID, obj.Kind, obj.Name, m.Dist)
	}

	// Download a server-side instantiation of one edited image.
	img, err := c.Image(edited[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaterialized edited image %d over HTTP: %dx%d pixels\n", edited[0], img.W, img.H)

	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d images (%d binary, %d edited)\n",
		st.Catalog.Images, st.Catalog.Binaries, st.Catalog.Edited)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
