// Quickstart: the smallest end-to-end use of the public API — insert a
// raster, store an edited version as an operation sequence, and run color
// range queries answered without ever instantiating the edit.
package main

import (
	"fmt"
	"log"

	mmdb "repro"
)

func main() {
	// An in-memory database with the default 64-bin RGB quantizer.
	db, err := mmdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A 100×100 image: top half blue, bottom half white.
	blue, _ := mmdb.LookupColor("blue")
	white, _ := mmdb.LookupColor("white")
	red, _ := mmdb.LookupColor("red")
	img := mmdb.NewFilledImage(100, 100, white)
	for y := 0; y < 50; y++ {
		for x := 0; x < 100; x++ {
			img.Set(x, y, blue)
		}
	}
	id, err := db.InsertImage("banner", img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted banner as id %d (50%% blue, 50%% white)\n", id)

	// Store an edited version AS A SEQUENCE: recolor blue to red. This
	// costs a few dozen bytes instead of a 30 KB raster copy.
	seq := &mmdb.Sequence{
		BaseID: id,
		Ops: []mmdb.Op{
			mmdb.Define{Region: mmdb.R(0, 0, 100, 100)},
			mmdb.Modify{Old: blue, New: red},
		},
	}
	eid, err := db.InsertEdited("banner-red", seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted edited version as id %d (%d ops)\n", eid, len(seq.Ops))

	// Range queries in the paper's phrasing. The edited image is matched
	// through rule-derived bounds — its pixels are never computed.
	for _, q := range []string{
		"at least 25% blue",
		"at least 25% red",
		"at most 10% red",
		"between 40% and 60% white",
	} {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> ids %v  (rule evaluations: %d)\n", q, res.IDs, res.Stats.OpsEvaluated)
	}

	// The paper's base↔edited connection: expanding a match set pulls in
	// the original of every matched edit.
	res, _ := db.Query("at least 25% red")
	fmt.Printf("expanded to bases: %v\n", db.ExpandToBases(res.IDs))

	// Storage economics of the sequence representation.
	rasterBytes, seqBytes, _ := db.StorageFootprint()
	fmt.Printf("storage: %d raster bytes vs %d sequence bytes\n", rasterBytes, seqBytes)
}
