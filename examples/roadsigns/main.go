// Road signs: the motivating application from the paper's introduction —
// autonomous-navigation sign recognition using the color conventions signs
// follow worldwide. Demonstrates why database augmentation helps: a probe
// photographed under bad lighting fails to match the stored originals, but
// matches an augmented (darkened) edited version, and the base↔edited
// connection recovers the original sign.
package main

import (
	"fmt"
	"log"

	mmdb "repro"
	"repro/internal/dataset"
	"repro/internal/editops"
)

func main() {
	db, err := mmdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	signs := dataset.RoadSigns(16, 48, 48, 9)
	for _, s := range signs {
		if _, err := db.InsertImage(s.Name, s.Img); err != nil {
			log.Fatal(err)
		}
	}

	// Augment each sign with a "night time" variant: every palette color
	// replaced by a darkened version — the lighting-variation failure mode
	// the paper's §2 describes. Stored as a handful of Modify operations.
	darken := func(c mmdb.RGB) mmdb.RGB {
		return mmdb.RGB{R: c.R / 3, G: c.G / 3, B: c.B / 3}
	}
	for _, id := range db.Binaries() {
		img, err := db.Image(id)
		if err != nil {
			log.Fatal(err)
		}
		ops := []mmdb.Op{mmdb.Define{Region: img.Bounds()}}
		for _, c := range img.Palette() {
			ops = append(ops, mmdb.Modify{Old: c, New: darken(c)})
		}
		obj, _ := db.Get(id)
		if _, err := db.InsertEdited(obj.Name+"-night", &mmdb.Sequence{BaseID: id, Ops: ops}); err != nil {
			log.Fatal(err)
		}
	}
	st, _ := db.Stats()
	fmt.Printf("database: %d signs + %d night variants\n", st.Catalog.Binaries, st.Catalog.Edited)

	// A probe: sign #3 "photographed at night" (same darkening applied).
	probeBase := signs[3]
	env := &editops.Env{}
	probeOps := []mmdb.Op{mmdb.Define{Region: probeBase.Img.Bounds()}}
	for _, c := range probeBase.Img.Palette() {
		probeOps = append(probeOps, mmdb.Modify{Old: c, New: darken(c)})
	}
	probe, err := editops.Apply(probeBase.Img, probeOps, env)
	if err != nil {
		log.Fatal(err)
	}

	// Without augmentation, the nearest binary image would be far away;
	// with it, the night variant matches exactly and the connection pulls
	// in the daytime original.
	matches, _, err := db.QueryByExample(probe, 3, mmdb.MetricIntersection)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnearest objects to the night-time probe of %s:\n", probeBase.Name)
	var hit uint64
	for _, m := range matches {
		obj, _ := db.Get(m.ID)
		fmt.Printf("  %6d  %-8s %-20s dist=%.4f\n", m.ID, obj.Kind, obj.Name, m.Dist)
		if hit == 0 {
			hit = m.ID
		}
	}
	expanded := db.ExpandToBases([]uint64{hit})
	fmt.Printf("\nexpanding best match %d through the base connection -> %v\n", hit, expanded)
	for _, id := range expanded {
		obj, _ := db.Get(id)
		fmt.Printf("  %6d  %-8s %s\n", id, obj.Kind, obj.Name)
	}
}
