// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table and figure (run `go test -bench=.` or, for the formatted
// series, `go run ./cmd/benchfig -exp all`):
//
//	BenchmarkTable1Rules        — Table 1: the rule engine itself
//	BenchmarkTable2Corpora      — Table 2: corpus construction at the
//	                              default parameters (reports the realized
//	                              composition as custom metrics)
//	BenchmarkFigure3Helmet      — Figure 3: helmet sweep, RBM vs BWM
//	BenchmarkFigure4Flag        — Figure 4: flag sweep, RBM vs BWM
//	BenchmarkAblation*          — DESIGN.md ablations (widening share,
//	                              ops/image, instantiation baseline,
//	                              precomputed bounds cache)
//	BenchmarkExtension*         — DESIGN.md extensions (pruned k-NN,
//	                              R-tree probe, BIC signatures)
//
// plus micro-benchmarks for the substrates (histogram extraction,
// instantiation, BOUNDS walks, the page store and the R-tree).
package mmdb_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	mmdb "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/editops"
	"repro/internal/histogram"
	"repro/internal/imaging"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/rules"
	"repro/internal/store"

	"repro/internal/colorspace"
)

// benchCorpus caches corpora across benchmark runs.
var benchCorpora = map[string]*bench.Corpus{}

func corpusFor(b *testing.B, cfg bench.Config) *bench.Corpus {
	b.Helper()
	if c, ok := benchCorpora[cfg.Name]; ok {
		return c
	}
	c, err := bench.BuildCorpus(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchCorpora[cfg.Name] = c
	return c
}

// benchFigure runs one figure's sweep as sub-benchmarks: for each sequence
// percentage, the full query workload under RBM and BWM.
func benchFigure(b *testing.B, cfg bench.Config) {
	corpus := corpusFor(b, cfg)
	total := cfg.Total()
	for _, pct := range []int{20, 40, 60, 78} {
		n := pct * total / 100
		if n > cfg.Edited {
			n = cfg.Edited
		}
		db, err := corpus.BuildDBAt(n)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []core.Mode{core.ModeRBM, core.ModeBWM} {
			b.Run(fmt.Sprintf("seqPct=%d/%s", pct, mode), func(b *testing.B) {
				b.ReportAllocs()
				var ops int
				for i := 0; i < b.N; i++ {
					_, tot, err := corpus.RunWorkload(db, mode)
					if err != nil {
						b.Fatal(err)
					}
					ops = tot.OpsEvaluated
				}
				b.ReportMetric(float64(ops), "rule-evals/workload")
			})
		}
		db.Close()
	}
}

// BenchmarkFigure3Helmet regenerates Figure 3 (helmet data set).
func BenchmarkFigure3Helmet(b *testing.B) { benchFigure(b, bench.HelmetConfig()) }

// BenchmarkFigure4Flag regenerates Figure 4 (flag data set).
func BenchmarkFigure4Flag(b *testing.B) { benchFigure(b, bench.FlagConfig()) }

// BenchmarkTable1Rules measures the Table 1 rule engine: one BOUNDS walk
// over a representative sequence per iteration.
func BenchmarkTable1Rules(b *testing.B) {
	q := colorspace.NewUniformRGB(4)
	img := dataset.Flags(1, 48, 32, 1)[0].Img
	hist := histogram.Extract(img, q)
	engine := rules.NewEngine(q, imaging.RGB{}, nil)
	aug := dataset.NewAugmenter(dataset.AugmentConfig{PerBase: 1, OpsPerImage: 6, Seed: 2})
	seq := aug.ScriptsFor(1, img, nil)[0]
	bin := q.Bin(dataset.Red)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.BoundsForBin(hist, img.W, img.H, seq.Ops, bin); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(seq.Ops)), "ops/walk")
}

// BenchmarkTable2Corpora measures construction of the two default corpora
// and reports the realized Table 2 composition.
func BenchmarkTable2Corpora(b *testing.B) {
	for _, cfg := range []bench.Config{bench.HelmetConfig(), bench.FlagConfig()} {
		b.Run(cfg.Name, func(b *testing.B) {
			var st core.DBStats
			for i := 0; i < b.N; i++ {
				corpus, err := bench.BuildCorpus(cfg)
				if err != nil {
					b.Fatal(err)
				}
				db, err := corpus.BuildDBAt(cfg.Edited)
				if err != nil {
					b.Fatal(err)
				}
				st, err = db.Stats()
				if err != nil {
					b.Fatal(err)
				}
				db.Close()
			}
			b.ReportMetric(float64(st.Catalog.Images), "images")
			b.ReportMetric(float64(st.Catalog.WideningOnly), "widening-only")
			b.ReportMetric(float64(st.Catalog.NonWidening), "non-widening")
			b.ReportMetric(st.Catalog.AvgOpsPerEdited, "avg-ops")
		})
	}
}

// BenchmarkAblationWidening sweeps the non-widening share (ablation A).
func BenchmarkAblationWidening(b *testing.B) {
	cfg := bench.FlagConfig()
	cfg.Queries = 30
	for _, frac := range []float64{0, 0.5, 1} {
		c := cfg
		c.NonWidening = int(frac * float64(cfg.Edited))
		c.Name = fmt.Sprintf("flag-bench-nw%.0f", frac*100)
		corpus := corpusFor(b, c)
		db, err := corpus.BuildDBAt(c.Edited)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nonWidening=%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := corpus.RunWorkload(db, core.ModeBWM); err != nil {
					b.Fatal(err)
				}
			}
		})
		db.Close()
	}
}

// BenchmarkAblationOpsPerImage sweeps sequence length (ablation B).
func BenchmarkAblationOpsPerImage(b *testing.B) {
	cfg := bench.FlagConfig()
	cfg.Queries = 30
	for _, ops := range []int{2, 6, 12} {
		c := cfg
		c.OpsPerImage = ops
		c.Name = fmt.Sprintf("flag-bench-ops%d", ops)
		corpus := corpusFor(b, c)
		db, err := corpus.BuildDBAt(c.Edited)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := corpus.RunWorkload(db, core.ModeBWM); err != nil {
					b.Fatal(err)
				}
			}
		})
		db.Close()
	}
}

// BenchmarkAblationInstantiate compares all execution modes (ablation C) —
// the instantiation ground truth versus the bound-based methods.
func BenchmarkAblationInstantiate(b *testing.B) {
	cfg := bench.HelmetConfig()
	cfg.Queries = 10
	corpus := corpusFor(b, cfg)
	db, err := corpus.BuildDBAt(cfg.Edited)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for _, mode := range []core.Mode{core.ModeInstantiate, core.ModeRBM, core.ModeBWM, core.ModeBWMIndexed} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := corpus.RunWorkload(db, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionKNN measures k-NN with bound pruning (extension D).
func BenchmarkExtensionKNN(b *testing.B) {
	cfg := bench.HelmetConfig()
	corpus := corpusFor(b, cfg)
	db, err := corpus.BuildDBAt(cfg.Edited)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	probe := dataset.Helmets(1, cfg.ImgW, cfg.ImgH, 99)[0].Img
	target := histogram.Extract(probe, colorspace.NewUniformRGB(4))
	b.ReportAllocs()
	b.ResetTimer()
	var pruned int
	for i := 0; i < b.N; i++ {
		_, st, err := db.KNN(query.KNN{Target: target, K: 5, Metric: query.MetricL1})
		if err != nil {
			b.Fatal(err)
		}
		pruned = st.EditedPruned
	}
	b.ReportMetric(float64(pruned), "edited-pruned")
}

// BenchmarkExtensionRTree compares the BWM base probe strategies
// (extension E).
func BenchmarkExtensionRTree(b *testing.B) {
	cfg := bench.FlagConfig()
	cfg.Queries = 30
	cfg.Name = "flag-bench-rtree"
	corpus := corpusFor(b, cfg)
	db, err := corpus.BuildDBAt(cfg.Edited)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for _, mode := range []core.Mode{core.ModeBWM, core.ModeBWMIndexed} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := corpus.RunWorkload(db, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkHistogramExtract(b *testing.B) {
	img := dataset.Flags(1, 128, 96, 1)[0].Img
	q := colorspace.NewUniformRGB(4)
	b.SetBytes(int64(3 * img.Size()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		histogram.Extract(img, q)
	}
}

func BenchmarkInstantiateSequence(b *testing.B) {
	img := dataset.Flags(1, 64, 48, 1)[0].Img
	aug := dataset.NewAugmenter(dataset.AugmentConfig{PerBase: 1, OpsPerImage: 5, Seed: 3})
	seq := aug.ScriptsFor(1, img, nil)[0]
	env := &editops.Env{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := editops.Apply(img, seq.Ops, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorePutGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.esidb")
	st, err := store.Create(path, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	blob := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(blob)
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := st.Put(blob)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Get(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTreeInsertQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := rtree.New(8, 16)
	point := func() []float64 {
		p := make([]float64, 8)
		for i := range p {
			p[i] = rng.Float64()
		}
		return p
	}
	for i := 0; i < 2000; i++ {
		tr.InsertPoint(point(), uint64(i+1))
	}
	q := point()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.NearestK(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertImage(b *testing.B) {
	db, err := mmdb.Open()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	img := dataset.Helmets(1, 64, 48, 1)[0].Img
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.InsertImage("x", img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionBIC measures BIC signature extraction + search
// (extension F).
func BenchmarkExtensionBIC(b *testing.B) {
	cfg := bench.HelmetConfig()
	corpus := corpusFor(b, cfg)
	db, err := corpus.BuildDBAt(0)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	idx, err := db.BICIndex()
	if err != nil {
		b.Fatal(err)
	}
	probe := dataset.Helmets(1, cfg.ImgW, cfg.ImgH, 77)[0].Img
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.SearchImage(probe, 5)
	}
}

// BenchmarkAblationCachedBounds compares the warmed bounds cache against
// the rule-walking modes (ablation G).
func BenchmarkAblationCachedBounds(b *testing.B) {
	cfg := bench.FlagConfig()
	cfg.Queries = 30
	cfg.Name = "flag-bench-cache"
	corpus := corpusFor(b, cfg)
	db, err := corpus.BuildDBAt(cfg.Edited)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.WarmBoundsCache(); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModeRBM, core.ModeBWM, core.ModeCachedBounds} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := corpus.RunWorkload(db, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
