package mmdb

import (
	"context"
	"fmt"
	"time"

	"repro/internal/colorspace"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/editops"
	"repro/internal/query"
)

// DB is the augmented multimedia database. It is safe for concurrent use.
type DB struct {
	inner       *core.DB
	autoAugment *AugmentOptions // nil unless WithAutoAugment was given
}

// openConfig collects Open's settings: the core engine configuration plus
// facade-level behaviour that the engine does not know about.
type openConfig struct {
	core        core.Config
	autoAugment *AugmentOptions
}

// Option configures Open.
type Option func(*openConfig)

// WithPath backs the database with a page-store file (created if absent).
func WithPath(path string) Option {
	return func(c *openConfig) { c.core.Path = path }
}

// WithQuantizer selects the color quantizer. Without this option new
// databases use uniform RGB with 4 divisions per channel (64 bins) and
// existing databases adopt whatever quantizer they were created with.
func WithQuantizer(q Quantizer) Option {
	return func(c *openConfig) { c.core.Quantizer = q }
}

// WithQuantizerName selects the quantizer by its persisted name, e.g.
// "rgb4", "hsv18x3x3" or "luv4x6". It returns an error through Open if the
// name does not parse.
func WithQuantizerName(name string) Option {
	return func(c *openConfig) {
		q, err := colorspace.ParseQuantizer(name)
		if err != nil {
			c.core.Quantizer = badQuantizer{name: name, err: err}
			return
		}
		c.core.Quantizer = q
	}
}

// badQuantizer defers a name-parse failure to Open, where it can be
// returned as an error rather than a panic inside an Option.
type badQuantizer struct {
	name string
	err  error
}

func (b badQuantizer) Bins() int       { return 1 }
func (b badQuantizer) Bin(RGB) int     { return 0 }
func (b badQuantizer) Name() string    { return b.name }
func (b badQuantizer) Validate() error { return b.err }

// WithBackground sets the background color used by Mutate vacancies and
// Merge gaps (default black).
func WithBackground(bg RGB) Option {
	return func(c *openConfig) { c.core.Background = bg }
}

// WithPageSize sets the store page size (persistent databases only).
func WithPageSize(bytes int) Option {
	return func(c *openConfig) { c.core.Store.PageSize = bytes }
}

// WithPoolPages sets the buffer-pool capacity in pages.
func WithPoolPages(n int) Option {
	return func(c *openConfig) { c.core.Store.PoolPages = n }
}

// WithParallelism sets the candidate-evaluation worker count: 0 (default)
// sizes the pool to GOMAXPROCS, 1 forces serial execution, n > 1 uses
// exactly n workers. Query results are identical at every setting.
func WithParallelism(n int) Option {
	return func(c *openConfig) { c.core.Parallelism = n }
}

// WithGroupCommit tunes the write-ahead log's group commit (persistent
// databases only). window is how long an append waits for companions before
// forcing an fsync; maxBatch caps how many appends one fsync may commit
// (0 = default, 1 = fsync every append individually). The defaults —
// no window, batches of up to 64 — already coalesce concurrent writers;
// a small window (e.g. 2ms) trades single-writer latency for throughput
// under bursty load.
func WithGroupCommit(window time.Duration, maxBatch int) Option {
	return func(c *openConfig) {
		c.core.WAL.Window = window
		c.core.WAL.MaxBatch = maxBatch
	}
}

// WithSegmentStore backs the database with the segmented storage engine
// instead of the page store: objects live in immutable WAL-sealed segment
// files with bloom filters and per-bin bound sketches, and space is
// reclaimed by background compaction rather than the stop-the-world
// Compact rewrite. Requires WithPath. The zero Options value selects the
// engine defaults (4 MiB segments, 10 bloom bits/key, sketch skip on).
func WithSegmentStore(opts SegmentOptions) Option {
	return func(c *openConfig) {
		o := opts
		c.core.Segment = &o
	}
}

// WithAutoAugment makes every InsertImage/InsertImageCtx automatically
// generate edited versions of the new image per opts (the paper's database
// augmentation, §2), unless the individual insert opts out with
// WithNoAugment. Off by default.
func WithAutoAugment(opts AugmentOptions) Option {
	return func(c *openConfig) { c.autoAugment = &opts }
}

// Open creates an in-memory database, or opens/creates a persistent one
// when WithPath is given.
func Open(opts ...Option) (*DB, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	if bad, ok := cfg.core.Quantizer.(badQuantizer); ok {
		return nil, fmt.Errorf("mmdb: quantizer %q: %w", bad.name, bad.err)
	}
	inner, err := core.Open(cfg.core)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, autoAugment: cfg.autoAugment}, nil
}

// Close persists (when file-backed) and releases the database.
func (db *DB) Close() error { return db.inner.Close() }

// Sync persists the catalog, fsyncs the store file, and checkpoints the
// write-ahead log (everything the log held is now in the store, so it is
// truncated).
func (db *DB) Sync() error { return db.inner.Sync() }

// SaveQueryStats persists the always-on query-statistics snapshot next to
// the store file (no-op for in-memory databases).
func (db *DB) SaveQueryStats() error { return db.inner.SaveQueryStats() }

// WALStats reports write-ahead-log activity: fsyncs, appended and replayed
// records, current log size. ok is false for in-memory databases, which
// have no log.
func (db *DB) WALStats() (st WALStats, ok bool) { return db.inner.WALStats() }

// WALCheckpoint forces a durability checkpoint: the catalog and store are
// persisted and the write-ahead log truncated. Equivalent to Sync; exposed
// under this name for operational tooling (`esidb wal checkpoint`).
func (db *DB) WALCheckpoint() error { return db.inner.Sync() }

// WALTail serves one page of the WAL replication stream: fsync-durable
// records with LSN above the cursor, long-polling up to wait when the
// cursor is already at the durable horizon. A cursor below the checkpoint
// floor returns ErrWALTruncated, telling the follower to re-seed from a
// snapshot. In-memory databases return an error (no log to ship).
func (db *DB) WALTail(ctx context.Context, from uint64, max int, wait time.Duration) (WALTailResult, error) {
	return db.inner.WALTail(ctx, from, max, wait)
}

// ApplyRedoRecord applies one shipped WAL record to this database — the
// follower half of replication. Application is idempotent (the same redo
// machinery crash recovery uses) and the record is re-logged locally so a
// follower crash recovers from its own log.
func (db *DB) ApplyRedoRecord(ctx context.Context, payload []byte) error {
	return db.inner.ApplyRedoRecord(ctx, payload)
}

// Crash abandons the database without flushing anything: buffered store
// pages and the group-commit queue are dropped exactly as a process kill
// would drop them. The next Open recovers from the journal and write-ahead
// log. It exists for crash-recovery tests and durability drills.
func (db *DB) Crash() error { return db.inner.Crash() }

// Compact reclaims the space of deleted objects and catalog churn. Page
// store databases are rewritten stop-the-world into a fresh file; segmented
// databases seal the memtable and merge segments online, with writes and
// queries proceeding during the merge. No-op for in-memory databases.
func (db *DB) Compact() error { return db.inner.Compact() }

// CheckStore runs the storage integrity scan (fsck). Page-store databases
// scan pages and slots; segmented databases verify every segment's frame
// CRCs, footer and filter metadata (Pages then counts segments and
// LiveCells live entries). In-memory databases return a clean empty
// result.
func (db *DB) CheckStore() (StoreCheck, error) { return db.inner.CheckStore() }

// SegmentStats reports segmented-engine activity: live segments, memtable
// occupancy, seal/compaction counts, bloom and sketch hit rates. ok is
// false unless the database was opened with WithSegmentStore.
func (db *DB) SegmentStats() (st SegmentStats, ok bool) { return db.inner.SegmentStats() }

// SegmentManifest lists the live segments of a segmented database (newest
// last): id ranges, entry counts, bytes, filter sizes. ok is false unless
// the database was opened with WithSegmentStore.
func (db *DB) SegmentManifest() (m SegmentManifest, ok bool) { return db.inner.SegmentManifest() }

// SetSegmentSketchSkip toggles the per-segment bound-sketch skip filter at
// runtime (the bench's on/off arms). Reports whether the database is
// segmented; non-segmented databases ignore the call.
func (db *DB) SetSegmentSketchSkip(enabled bool) bool { return db.inner.SetSegmentSketchSkip(enabled) }

// SetParallelism retunes the candidate-evaluation worker count at runtime
// (0 = GOMAXPROCS, 1 = serial, n > 1 = exactly n). Safe to call while
// queries are in flight; in-flight queries keep the setting they started
// with.
func (db *DB) SetParallelism(n int) { db.inner.SetParallelism(n) }

// Parallelism reports the configured candidate-evaluation parallelism knob
// (0 means auto-size to GOMAXPROCS).
func (db *DB) Parallelism() int { return db.inner.Parallelism() }

// WarmBoundsCache precomputes every edited image's per-bin bounds vector so
// ModeCachedBounds answers without rule walks. BoundsCacheStats reports the
// memory cost.
func (db *DB) WarmBoundsCache() error { return db.inner.WarmBoundsCache() }

// BoundsCacheStats reports the bounds cache's entries and resident bytes.
func (db *DB) BoundsCacheStats() (entries int, bytes int64) {
	return db.inner.BoundsCacheStats()
}

// Quantizer returns the database's color quantizer.
func (db *DB) Quantizer() Quantizer { return db.inner.Quantizer() }

// insertConfig is the resolved form of a call's InsertOptions.
type insertConfig struct {
	id        uint64
	noAugment bool
}

// InsertOption customizes a single insert.
type InsertOption func(*insertConfig)

// WithID pins the new object's id instead of allocating one (0 keeps the
// allocator). Cluster coordinators assign ids globally and push them down so
// all shards share one id space.
func WithID(id uint64) InsertOption {
	return func(c *insertConfig) { c.id = id }
}

// WithNoAugment suppresses WithAutoAugment for this insert only — used by
// bulk restore paths (dump load, cluster rebalance) that re-insert edited
// versions explicitly and must not generate fresh ones.
func WithNoAugment() InsertOption {
	return func(c *insertConfig) { c.noAugment = true }
}

// InsertImageCtx stores a binary image and returns its object id. The
// insert is applied and logged under the database lock; the call then waits
// for the write-ahead log's group commit to make it durable before
// returning. Cancelling ctx abandons the wait — the write may still commit.
// If the database was opened WithAutoAugment, edited versions are generated
// after the insert commits unless WithNoAugment is given.
func (db *DB) InsertImageCtx(ctx context.Context, name string, img *Image, opts ...InsertOption) (uint64, error) {
	var ic insertConfig
	for _, o := range opts {
		o(&ic)
	}
	id, err := db.inner.InsertImageCtx(ctx, ic.id, name, img)
	if err != nil {
		return 0, err
	}
	if db.autoAugment != nil && !ic.noAugment {
		if _, err := db.AugmentCtx(ctx, id, *db.autoAugment); err != nil {
			return id, fmt.Errorf("mmdb: auto-augment of %d: %w", id, err)
		}
	}
	return id, nil
}

// InsertEditedCtx stores an edited image as its operation sequence and
// routes it into the Bound-Widening data structure. Durability semantics
// match InsertImageCtx. Auto-augment never applies to edited inserts.
func (db *DB) InsertEditedCtx(ctx context.Context, name string, seq *Sequence, opts ...InsertOption) (uint64, error) {
	var ic insertConfig
	for _, o := range opts {
		o(&ic)
	}
	return db.inner.InsertEditedCtx(ctx, ic.id, name, seq)
}

// AppendOpsCtx extends a stored edited image's sequence with more
// operations, re-classifying and re-routing it in the Bound-Widening
// structure. Durability semantics match InsertImageCtx.
func (db *DB) AppendOpsCtx(ctx context.Context, id uint64, ops []Op) error {
	return db.inner.AppendOpsCtx(ctx, id, ops)
}

// DeleteCtx removes an object. Edited images are always deletable; binary
// images only once nothing references them (delete the edited versions
// first). Durability semantics match InsertImageCtx.
func (db *DB) DeleteCtx(ctx context.Context, id uint64) error {
	return db.inner.DeleteCtx(ctx, id)
}

// InsertImage stores a binary image and returns its object id.
//
// Deprecated: use InsertImageCtx.
func (db *DB) InsertImage(name string, img *Image) (uint64, error) {
	return db.InsertImageCtx(context.Background(), name, img)
}

// InsertImageWithID is InsertImage with an explicit object id (0 means
// "allocate").
//
// Deprecated: use InsertImageCtx with WithID.
func (db *DB) InsertImageWithID(id uint64, name string, img *Image) (uint64, error) {
	return db.InsertImageCtx(context.Background(), name, img, WithID(id))
}

// InsertEdited stores an edited image as its operation sequence.
//
// Deprecated: use InsertEditedCtx.
func (db *DB) InsertEdited(name string, seq *Sequence) (uint64, error) {
	return db.InsertEditedCtx(context.Background(), name, seq)
}

// InsertEditedWithID is InsertEdited with an explicit object id (0 means
// "allocate").
//
// Deprecated: use InsertEditedCtx with WithID.
func (db *DB) InsertEditedWithID(id uint64, name string, seq *Sequence) (uint64, error) {
	return db.InsertEditedCtx(context.Background(), name, seq, WithID(id))
}

// AppendOps extends a stored edited image's sequence with more operations.
//
// Deprecated: use AppendOpsCtx.
func (db *DB) AppendOps(id uint64, ops []Op) error {
	return db.AppendOpsCtx(context.Background(), id, ops)
}

// OptimizeSequence rewrites a sequence into an equivalent shorter one for
// its base image (dead Defines, no-op recolors, empty-region edits and
// identity transforms removed). The instantiated raster is unchanged;
// storage and per-query rule-walk cost shrink.
func (db *DB) OptimizeSequence(seq *Sequence) (*Sequence, error) {
	base, err := db.inner.Get(seq.BaseID)
	if err != nil {
		return nil, err
	}
	if base.Kind != KindBinary {
		return nil, fmt.Errorf("mmdb: sequence base %d is not a binary image", seq.BaseID)
	}
	return &Sequence{BaseID: seq.BaseID, Ops: editops.Optimize(seq.Ops, base.W, base.H)}, nil
}

// AugmentOptions tunes Augment.
type AugmentOptions struct {
	// PerBase is how many edited versions to generate (default 3).
	PerBase int
	// OpsPerImage is the average operations per sequence (default 4).
	OpsPerImage int
	// NonWideningFrac is the fraction of edited versions containing a
	// non-bound-widening operation (default 0).
	NonWideningFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// Augment implements the paper's database augmentation (§2).
//
// Deprecated: use AugmentCtx.
func (db *DB) Augment(baseID uint64, opts AugmentOptions) ([]uint64, error) {
	return db.AugmentCtx(context.Background(), baseID, opts)
}

// AugmentCtx implements the paper's database augmentation (§2): it
// generates edited versions of the given base image with realistic editing
// scripts and inserts them, returning the new ids. Merge targets for
// non-widening scripts are drawn from the other binary images already in
// the database.
func (db *DB) AugmentCtx(ctx context.Context, baseID uint64, opts AugmentOptions) ([]uint64, error) {
	img, err := db.inner.Image(baseID)
	if err != nil {
		return nil, err
	}
	var others []uint64
	for _, id := range db.inner.Binaries() {
		if id != baseID {
			others = append(others, id)
		}
	}
	aug := dataset.NewAugmenter(dataset.AugmentConfig{
		PerBase:         opts.PerBase,
		OpsPerImage:     opts.OpsPerImage,
		NonWideningFrac: opts.NonWideningFrac,
		Seed:            opts.Seed,
	})
	obj, err := db.inner.Get(baseID)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for i, seq := range aug.ScriptsFor(baseID, img, others) {
		id, err := db.inner.InsertEditedCtx(ctx, 0, fmt.Sprintf("%s-edit-%d", obj.Name, i), seq)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

// QueryCtx parses a textual range query ("at least 25% blue", "between 10%
// and 30% red") and answers it; the Bound-Widening Method is the default.
// Options select the execution mode, tracing, and a result limit: a Mode
// value is itself an option, so db.QueryCtx(ctx, text, mmdb.ModeIndexed)
// works, as does db.QueryCtx(ctx, text, mmdb.WithTrace(tr)). Cancelling ctx
// stops the candidate walk.
func (db *DB) QueryCtx(ctx context.Context, text string, opts ...QueryOption) (*Result, error) {
	return db.inner.RangeQueryTextCtx(ctx, text, opts...)
}

// QueryModeCtx is QueryCtx with a positional execution mode.
//
// Deprecated: use QueryCtx; Mode is a QueryOption.
func (db *DB) QueryModeCtx(ctx context.Context, text string, mode Mode) (*Result, error) {
	return db.QueryCtx(ctx, text, mode)
}

// RangeQueryCtx answers a structured range query; options select the
// execution mode, tracing, and result limit.
func (db *DB) RangeQueryCtx(ctx context.Context, q Range, opts ...QueryOption) (*Result, error) {
	return db.inner.RangeQueryCtx(ctx, q, opts...)
}

// QueryCompoundCtx parses and evaluates a multi-predicate query joined by a
// single connective: "at least 20% red and at most 10% blue", or "at least
// 40% green or at least 40% teal". Options select the execution mode,
// tracing, and result limit.
func (db *DB) QueryCompoundCtx(ctx context.Context, text string, opts ...QueryOption) (*Result, error) {
	return db.inner.CompoundQueryTextCtx(ctx, text, opts...)
}

// QueryCompoundTracedCtx is QueryCompoundCtx with a positional mode and
// trace.
//
// Deprecated: use QueryCompoundCtx with WithTrace.
func (db *DB) QueryCompoundTracedCtx(ctx context.Context, text string, mode Mode, tr *Trace) (*Result, error) {
	return db.QueryCompoundCtx(ctx, text, mode, WithTrace(tr))
}

// CompoundQueryCtx evaluates a structured compound query; options select
// the execution mode, tracing, and result limit.
func (db *DB) CompoundQueryCtx(ctx context.Context, c Compound, opts ...QueryOption) (*Result, error) {
	return db.inner.CompoundQueryCtx(ctx, c, opts...)
}

// QueryColorFamilyCtx runs a multi-bin range query over a named color's
// whole bin family ("blue-ish"): under fine quantizers a perceptual color
// spans several bins, and the family query constrains their summed
// percentage. Options select the execution mode, tracing, and result limit.
func (db *DB) QueryColorFamilyCtx(ctx context.Context, name string, pctMin, pctMax float64, opts ...QueryOption) (*Result, error) {
	return db.inner.RangeQueryColorFamilyCtx(ctx, name, pctMin, pctMax, opts...)
}

// RangeQueryMultiCtx evaluates a structured multi-bin range query; options
// select the execution mode, tracing, and result limit.
func (db *DB) RangeQueryMultiCtx(ctx context.Context, q MultiRange, opts ...QueryOption) (*Result, error) {
	return db.inner.RangeQueryMultiCtx(ctx, q, opts...)
}

// RangeQueryMultiTracedCtx is RangeQueryMultiCtx with a positional mode and
// trace.
//
// Deprecated: use RangeQueryMultiCtx with WithTrace.
func (db *DB) RangeQueryMultiTracedCtx(ctx context.Context, q MultiRange, mode Mode, tr *Trace) (*Result, error) {
	return db.RangeQueryMultiCtx(ctx, q, mode, WithTrace(tr))
}

// Query answers a textual range query with the Bound-Widening Method.
//
// Deprecated: use QueryCtx.
func (db *DB) Query(text string) (*Result, error) {
	return db.QueryCtx(context.Background(), text)
}

// QueryMode is Query with an explicit execution mode.
//
// Deprecated: use QueryModeCtx.
func (db *DB) QueryMode(text string, mode Mode) (*Result, error) {
	return db.QueryModeCtx(context.Background(), text, mode)
}

// RangeQuery answers a structured range query in the given mode.
//
// Deprecated: use RangeQueryCtx.
func (db *DB) RangeQuery(q Range, mode Mode) (*Result, error) {
	return db.RangeQueryCtx(context.Background(), q, mode)
}

// QueryCompound parses and evaluates a multi-predicate query.
//
// Deprecated: use QueryCompoundCtx.
func (db *DB) QueryCompound(text string, mode Mode) (*Result, error) {
	return db.QueryCompoundCtx(context.Background(), text, mode)
}

// QueryCompoundTraced is QueryCompound with tracing.
//
// Deprecated: use QueryCompoundTracedCtx.
func (db *DB) QueryCompoundTraced(text string, mode Mode, tr *Trace) (*Result, error) {
	return db.QueryCompoundTracedCtx(context.Background(), text, mode, tr)
}

// CompoundQuery evaluates a structured compound query.
//
// Deprecated: use CompoundQueryCtx.
func (db *DB) CompoundQuery(c Compound, mode Mode) (*Result, error) {
	return db.CompoundQueryCtx(context.Background(), c, mode)
}

// QueryColorFamily runs a multi-bin range query over a named color's family.
//
// Deprecated: use QueryColorFamilyCtx.
func (db *DB) QueryColorFamily(name string, pctMin, pctMax float64, mode Mode) (*Result, error) {
	return db.QueryColorFamilyCtx(context.Background(), name, pctMin, pctMax, mode)
}

// RangeQueryMulti evaluates a structured multi-bin range query.
//
// Deprecated: use RangeQueryMultiCtx.
func (db *DB) RangeQueryMulti(q MultiRange, mode Mode) (*Result, error) {
	return db.RangeQueryMultiCtx(context.Background(), q, mode)
}

// ColorFamily returns the histogram bins a named color's family covers
// under this database's quantizer.
func (db *DB) ColorFamily(name string) ([]int, error) {
	return colorspace.FamilyForName(name, db.inner.Quantizer())
}

// ParseQuery parses query text against this database's quantizer without
// executing it.
func (db *DB) ParseQuery(text string) (Range, error) {
	return query.ParseRange(text, db.inner.Quantizer())
}

// Explain computes a query plan without running the query: base matches,
// the edited images BWM would skip rule-free, and the operation counts each
// method would evaluate.
func (db *DB) Explain(text string) (*Plan, error) { return db.inner.ExplainText(text) }

// QueryByExampleCtx runs a k-nearest-neighbor search using a probe image:
// "find the K images most similar to this one". Edited images participate
// via bound-based pruning. Options select the execution strategy
// (ModeIndexed searches best-first over the bounds S-tree) and tracing.
func (db *DB) QueryByExampleCtx(ctx context.Context, probe *Image, k int, metric Metric, opts ...QueryOption) ([]Match, *KNNStats, error) {
	target := ExtractHistogram(probe, db.inner.Quantizer())
	return db.inner.KNNCtx(ctx, query.KNN{Target: target, K: k, Metric: metric}, opts...)
}

// KNNCtx runs a k-nearest-neighbor search from a histogram target; options
// select the execution strategy and tracing.
func (db *DB) KNNCtx(ctx context.Context, q KNN, opts ...QueryOption) ([]Match, *KNNStats, error) {
	return db.inner.KNNCtx(ctx, q, opts...)
}

// QueryByExampleTracedCtx is QueryByExampleCtx with a positional trace.
//
// Deprecated: use QueryByExampleCtx with WithTrace.
func (db *DB) QueryByExampleTracedCtx(ctx context.Context, probe *Image, k int, metric Metric, tr *Trace) ([]Match, *KNNStats, error) {
	return db.QueryByExampleCtx(ctx, probe, k, metric, WithTrace(tr))
}

// QueryByExamplesCtx is the multiple-query-image technique the paper
// contrasts with augmentation: each probe is searched independently and the
// rankings fused (minimum distance per object). Note the cost scales with
// the probe count — which is the paper's argument for augmentation.
func (db *DB) QueryByExamplesCtx(ctx context.Context, probes []*Image, k int, metric Metric) ([]Match, *KNNStats, error) {
	targets := make([]*Histogram, len(probes))
	for i, p := range probes {
		targets[i] = ExtractHistogram(p, db.inner.Quantizer())
	}
	return db.inner.KNNMultiCtx(ctx, targets, k, metric)
}

// WithinDistanceCtx returns every image within dist of the probe under the
// metric, with bound-based pruning of edited images.
func (db *DB) WithinDistanceCtx(ctx context.Context, probe *Image, dist float64, metric Metric) ([]Match, *KNNStats, error) {
	target := ExtractHistogram(probe, db.inner.Quantizer())
	return db.inner.WithinDistanceCtx(ctx, target, dist, metric)
}

// QueryByExample runs a k-nearest-neighbor search using a probe image.
//
// Deprecated: use QueryByExampleCtx.
func (db *DB) QueryByExample(probe *Image, k int, metric Metric) ([]Match, *KNNStats, error) {
	return db.QueryByExampleCtx(context.Background(), probe, k, metric)
}

// KNN runs a k-nearest-neighbor search from a histogram target.
//
// Deprecated: use KNNCtx.
func (db *DB) KNN(q KNN) ([]Match, *KNNStats, error) {
	return db.KNNCtx(context.Background(), q)
}

// QueryByExamples fuses independent searches for several probe images.
//
// Deprecated: use QueryByExamplesCtx.
func (db *DB) QueryByExamples(probes []*Image, k int, metric Metric) ([]Match, *KNNStats, error) {
	return db.QueryByExamplesCtx(context.Background(), probes, k, metric)
}

// KNNBinary ranks only binary images (R-tree accelerated for L2).
func (db *DB) KNNBinary(q KNN) ([]Match, error) { return db.inner.KNNBinary(q) }

// WithinDistance returns every image within dist of the probe.
//
// Deprecated: use WithinDistanceCtx.
func (db *DB) WithinDistance(probe *Image, dist float64, metric Metric) ([]Match, *KNNStats, error) {
	return db.WithinDistanceCtx(context.Background(), probe, dist, metric)
}

// BuildBICIndex builds a Border/Interior Classification index over the
// binary images — an alternative, structure-aware color signature
// (Stehling et al., the paper's reference [21]). Snapshot semantics:
// rebuild after inserts.
func (db *DB) BuildBICIndex() (*BICIndex, error) { return db.inner.BICIndex() }

// ExpandToBases adds the base image of every edited match — the paper's
// connection that returns the original x whenever an edited op(x) matches.
func (db *DB) ExpandToBases(ids []uint64) []uint64 { return db.inner.ExpandToBases(ids) }

// Delete removes an object.
//
// Deprecated: use DeleteCtx.
func (db *DB) Delete(id uint64) error { return db.DeleteCtx(context.Background(), id) }

// Image materializes any object: binary rasters directly, edited images by
// executing their sequence.
func (db *DB) Image(id uint64) (*Image, error) { return db.inner.Image(id) }

// Get returns an object's catalog entry.
func (db *DB) Get(id uint64) (*Object, error) { return db.inner.Get(id) }

// Binaries returns the binary image ids in insertion order.
func (db *DB) Binaries() []uint64 { return db.inner.Binaries() }

// EditedIDs returns the edited image ids in insertion order.
func (db *DB) EditedIDs() []uint64 { return db.inner.EditedIDs() }

// EditedOf returns the edited images derived from a base image.
func (db *DB) EditedOf(baseID uint64) []uint64 { return db.inner.EditedOf(baseID) }

// Bounds computes the rule-engine bounds of an edited image for one bin.
func (db *DB) Bounds(id uint64, bin int) (Bounds, error) { return db.inner.Bounds(id, bin) }

// BinForColor resolves a color name ("blue") to its histogram bin.
func (db *DB) BinForColor(name string) (int, error) {
	return colorspace.BinForName(name, db.inner.Quantizer())
}

// Stats returns database statistics (catalog breakdown, BWM component
// sizes, store occupancy).
func (db *DB) Stats() (Stats, error) { return db.inner.Stats() }

// StorageFootprint reports (raster bytes, sequence bytes): the space cost
// of binary images versus the edit-sequence representation.
func (db *DB) StorageFootprint() (binaryBytes, editedBytes int64, err error) {
	return db.inner.StorageFootprint()
}

// ColorNames returns the query color vocabulary.
func ColorNames() []string { return colorspace.ColorNames() }

// LookupColor resolves a color name to its RGB value.
func LookupColor(name string) (RGB, bool) { return colorspace.LookupColor(name) }
